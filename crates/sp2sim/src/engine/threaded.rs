//! The threaded engine: one OS thread per simulated node, service loops
//! as extra OS threads, packets over unbounded channels.
//!
//! This is the original execution backend, extracted behind
//! [`Fabric`](super::Fabric). It exercises the protocol under real
//! concurrency — useful for shaking out protocol races — at the cost of
//! wall-clock speed (every blocking virtual-time receive is a real
//! thread block) and of nondeterministic tie-breaking wherever two
//! packets race to the same queue.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use super::{node_body, Fabric, ServiceHandle, TraceShared};
use crate::cluster::{ClusterConfig, RunOutput};
use crate::cost::CostModel;
use crate::node::Node;
use crate::packet::{Packet, Port};
use crate::stats::NetStats;
use crate::time::VTime;

struct PortChannels {
    tx: Vec<Sender<Packet>>,
    /// Receivers behind uncontended mutexes: each (node, port) queue has
    /// exactly one consumer (the owning node or service thread), so the
    /// lock only ever serializes that consumer against itself.
    rx: Vec<Mutex<Receiver<Packet>>>,
}

impl PortChannels {
    fn new(n: usize) -> PortChannels {
        let mut tx = Vec::with_capacity(n);
        let mut rx = Vec::with_capacity(n);
        for _ in 0..n {
            let (t, r) = unbounded();
            tx.push(t);
            rx.push(Mutex::new(r));
        }
        PortChannels { tx, rx }
    }
}

pub(crate) struct ThreadedFabric {
    app: PortChannels,
    srv: PortChannels,
    cost: CostModel,
    stats: NetStats,
    finals: Vec<AtomicU64>,
    rendezvous: Barrier,
    services: Mutex<HashMap<u64, JoinHandle<()>>>,
    next_service: AtomicU64,
    trace: Option<TraceShared>,
}

impl ThreadedFabric {
    fn ports(&self, port: Port) -> &PortChannels {
        match port {
            Port::App => &self.app,
            Port::Service => &self.srv,
        }
    }
}

impl Fabric for ThreadedFabric {
    fn tracing(&self) -> Option<&TraceShared> {
        self.trace.as_ref()
    }

    fn cost(&self) -> &CostModel {
        &self.cost
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn deliver(&self, dst: usize, port: Port, pkt: Packet) {
        // A send can only fail after the destination thread has exited,
        // which happens during teardown; dropping the packet is then
        // harmless.
        let _ = self.ports(port).tx[dst].send(pkt);
    }

    fn recv(&self, id: usize, port: Port) -> Option<Packet> {
        self.ports(port).rx[id].lock().recv().ok()
    }

    fn record_final(&self, id: usize, t: VTime) {
        self.finals[id].store(t.to_bits(), Ordering::SeqCst);
    }

    fn rendezvous(&self) {
        self.rendezvous.wait();
    }

    fn spawn_service(&self, f: Box<dyn FnOnce() + Send>) -> ServiceHandle {
        let id = self.next_service.fetch_add(1, Ordering::Relaxed);
        let handle = std::thread::spawn(f);
        self.services.lock().insert(id, handle);
        ServiceHandle(id)
    }

    fn join_service(&self, h: ServiceHandle) {
        let handle = self
            .services
            .lock()
            .remove(&h.0)
            .expect("service handle joined twice");
        handle.join().expect("service thread panicked");
    }
}

/// Run `f` on every node, each on its own OS thread.
pub(crate) fn run<R, F>(cfg: ClusterConfig, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&Node) -> R + Sync,
{
    let n = cfg.nprocs;
    let fabric = Arc::new(ThreadedFabric {
        app: PortChannels::new(n),
        srv: PortChannels::new(n),
        cost: cfg.cost,
        stats: NetStats::new(),
        finals: (0..n).map(|_| AtomicU64::new(0)).collect(),
        rendezvous: Barrier::new(n),
        services: Mutex::new(HashMap::new()),
        next_service: AtomicU64::new(0),
        trace: cfg.trace.map(TraceShared::new),
    });
    let dyn_fabric: Arc<dyn Fabric> = Arc::clone(&fabric) as Arc<dyn Fabric>;

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    {
        let slots: Vec<_> = results.iter_mut().collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (id, slot) in slots.into_iter().enumerate() {
                let fabric = Arc::clone(&dyn_fabric);
                let fref = &f;
                handles.push(scope.spawn(move || node_body(id, n, &fabric, fref, slot)));
            }
            for h in handles {
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(e);
                }
            }
        });
    }

    let finals: Vec<VTime> = fabric
        .finals
        .iter()
        .map(|a| VTime::from_bits(a.load(Ordering::SeqCst)))
        .collect();
    let elapsed = finals.iter().copied().fold(VTime::ZERO, VTime::max);
    let trace = fabric
        .trace
        .as_ref()
        .map(|ts| ts.collect(finals.iter().map(|t| t.us()).collect()));
    RunOutput {
        results: results.into_iter().map(|r| r.expect("node ran")).collect(),
        elapsed,
        stats: fabric.stats.snapshot(),
        trace,
    }
}
