//! Pluggable execution engines for the simulated cluster.
//!
//! [`Cluster::run`](crate::Cluster::run) accepts the engine through
//! [`ClusterConfig`](crate::ClusterConfig); everything the rest of the
//! simulator (and the DSM layer above it) touches — [`Node`],
//! [`Endpoint`](crate::Endpoint), packet delivery, the service-loop
//! spawn — goes through the [`Fabric`] trait defined here, so the two
//! engines are interchangeable:
//!
//! * [`EngineKind::Threaded`] — the original backend: one OS thread per
//!   simulated node (plus one per DSM service loop), packets over
//!   channels. Exercises the protocol under true concurrency, which
//!   makes it the right engine for race-hunting, but wall-clock
//!   performance is dominated by synchronization, and wall-clock
//!   scheduling leaks into tie-breaking decisions.
//! * [`EngineKind::Sequential`] — a deterministic backend that runs
//!   every node closure and service loop as a cooperatively scheduled
//!   fiber on **one** OS thread. No thread spawns, no channels, no
//!   nondeterminism: the same program produces byte-for-byte identical
//!   virtual times and statistics on every run, and many independent
//!   simulations can safely run in parallel (one engine per sweep
//!   worker thread), which is what the harness's parallel sweep runner
//!   does.
//!
//! Virtual time is computed identically by construction — both engines
//! share every cost-model code path; only *who runs the node code when*
//! differs. For programs whose virtual-time outcome is independent of
//! benign message races (symmetric barrier programs, neighbor exchanges
//! with per-source matching), the two engines produce identical
//! `elapsed` and statistics; the engine-equivalence tests pin this.

pub(crate) mod fiber;
pub(crate) mod sequential;
pub(crate) mod threaded;

use std::str::FromStr;
use std::sync::Arc;

use crate::cost::CostModel;
use crate::node::Node;
use crate::packet::{Packet, Port};
use crate::stats::NetStats;
use crate::time::VTime;

/// Which execution engine carries a cluster run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EngineKind {
    /// One OS thread per node; packets over channels (the default).
    #[default]
    Threaded,
    /// All nodes as fibers on one OS thread; deterministic.
    Sequential,
}

impl EngineKind {
    /// Both engines, threaded first.
    pub const ALL: [EngineKind; 2] = [EngineKind::Threaded, EngineKind::Sequential];

    /// Stable lower-case name (accepted back by [`FromStr`]).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Threaded => "threaded",
            EngineKind::Sequential => "sequential",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<EngineKind, String> {
        match s.to_ascii_lowercase().as_str() {
            "threaded" | "thread" | "threads" => Ok(EngineKind::Threaded),
            "sequential" | "seq" | "fiber" | "fibers" => Ok(EngineKind::Sequential),
            other => Err(format!(
                "unknown engine '{other}' (expected 'threaded' or 'sequential')"
            )),
        }
    }
}

/// Handle to a spawned service loop, returned by
/// [`Node::spawn_service`] and consumed by [`Node::join_service`].
/// Engine-specific: a thread join handle id or a fiber id.
#[derive(Debug)]
pub struct ServiceHandle(pub(crate) u64);

/// Shared state of a traced run, owned by the engine's fabric: the
/// spec, the run's wall-clock origin (every event's `host_ns` is
/// relative to it), and the sink endpoint buffers drain into when they
/// drop. Recording itself is lock-free (each endpoint owns its buffer);
/// the sink mutex is touched once per endpoint at teardown.
pub(crate) struct TraceShared {
    pub(crate) spec: trace::TraceSpec,
    pub(crate) start: std::time::Instant,
    pub(crate) sink: parking_lot::Mutex<Vec<trace::TrackTrace>>,
}

impl TraceShared {
    pub(crate) fn new(spec: trace::TraceSpec) -> TraceShared {
        TraceShared {
            spec,
            start: std::time::Instant::now(),
            sink: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Assemble the final [`trace::TraceData`] once every endpoint has
    /// dropped (both engines guarantee this before run output is
    /// built).
    pub(crate) fn collect(&self, final_us: Vec<f64>) -> trace::TraceData {
        let tracks = std::mem::take(&mut *self.sink.lock());
        let mut data = trace::TraceData { tracks, final_us };
        data.sort_tracks();
        data
    }
}

/// Everything a [`Node`]/[`Endpoint`](crate::Endpoint) needs from the
/// engine that carries it: packet transport, virtual-clock collection,
/// the wall-clock rendezvous, and the service-loop executor. One
/// implementation per engine.
pub(crate) trait Fabric: Send + Sync {
    /// The run's trace recorder, when tracing is enabled.
    fn tracing(&self) -> Option<&TraceShared> {
        None
    }

    /// The cluster cost model.
    fn cost(&self) -> &CostModel;

    /// The cluster-wide statistics.
    fn stats(&self) -> &NetStats;

    /// Enqueue `pkt` at `dst`'s `port`.
    fn deliver(&self, dst: usize, port: Port, pkt: Packet);

    /// Blocking receive of the next packet at (`id`, `port`), in
    /// delivery order. Returns `None` only when the engine is tearing
    /// the run down and no further packet can arrive.
    fn recv(&self, id: usize, port: Port) -> Option<Packet>;

    /// Record node `id`'s final virtual clock.
    fn record_final(&self, id: usize, t: VTime);

    /// Wall-clock rendezvous of all node contexts (measurement
    /// infrastructure; see [`Node::rendezvous`]).
    fn rendezvous(&self);

    /// Run `f` concurrently with the node contexts (an OS thread or a
    /// fiber, depending on the engine).
    fn spawn_service(&self, f: Box<dyn FnOnce() + Send>) -> ServiceHandle;

    /// Wait until the service context behind `h` finishes. Panics if it
    /// panicked, mirroring a thread join.
    fn join_service(&self, h: ServiceHandle);
}

/// Per-node body shared by both engines: build the node handle, run the
/// user closure, record the final clock, park the result.
pub(crate) fn node_body<R, F>(
    id: usize,
    n: usize,
    fabric: &Arc<dyn Fabric>,
    f: &F,
    slot: &mut Option<R>,
) where
    F: Fn(&Node) -> R + Sync,
{
    let node = Node::new(id, n, Arc::clone(fabric));
    let r = f(&node);
    node.endpoint().record_final_clock();
    *slot = Some(r);
}
