//! Minimal stackful coroutines ("fibers") for the sequential engine.
//!
//! The deterministic sequential engine runs every simulated node — and
//! every DSM service loop — as a cooperatively scheduled fiber on a
//! single OS thread. Fibers are what let the engine keep `sp2sim`'s
//! blocking programming model (`recv_match` just blocks) without OS
//! threads: a blocking operation saves the fiber's full call stack and
//! switches to the scheduler in a few dozen nanoseconds.
//!
//! The implementation is the classic boost-context design: a tiny
//! assembly routine saves the callee-saved register set and the stack
//! pointer, then restores another context's. Supported targets are
//! x86-64 (System V, tested) and aarch64 (AAPCS64); on other
//! architectures the sequential engine is unavailable and reports so at
//! run time (the threaded engine — the default — is unaffected).
//!
//! Stacks are heap allocations (the build environment provides no
//! `mmap` guard pages); each stack ends in a canary word that is
//! checked when the fiber completes, turning a silent overflow into a
//! loud panic. The default stack is 1 MiB, overridable through the
//! `SP2SIM_FIBER_STACK_KIB` environment variable.

use std::cell::Cell;

/// Stack size fallback (bytes).
const DEFAULT_STACK_BYTES: usize = 1 << 20;

/// Canary pattern written at the far (overflow) end of each stack.
const CANARY: u128 = 0xDEAD_FACE_CAFE_F00D_DEAD_FACE_CAFE_F00D;

/// Number of canary words guarding the stack end.
const CANARY_WORDS: usize = 4;

/// Configured stack size in bytes.
pub(crate) fn stack_bytes() -> usize {
    std::env::var("SP2SIM_FIBER_STACK_KIB")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map(|kib| (kib * 1024).max(64 * 1024))
        .unwrap_or(DEFAULT_STACK_BYTES)
}

/// True when this build can run fibers at all.
pub(crate) const fn supported() -> bool {
    cfg!(any(target_arch = "x86_64", target_arch = "aarch64"))
}

/// A suspended or running fiber: its stack plus the saved stack pointer.
pub(crate) struct Fiber {
    /// 16-byte aligned backing store; the stack grows downwards from
    /// the end of this allocation. Deliberately uninitialized (only the
    /// canary words and the initial context are written): the pages are
    /// faulted in lazily by actual stack use, so a deep stack reserve
    /// costs nothing per fiber.
    stack: Box<[std::mem::MaybeUninit<u128>]>,
    /// Saved stack pointer while the fiber is suspended.
    sp: Cell<*mut u8>,
}

/// Start package handed to a new fiber's entry trampoline.
struct FiberStart {
    /// The fiber body. `None` once taken.
    body: Option<Box<dyn FnOnce()>>,
}

impl Fiber {
    /// Create a fiber that will run `body` when first resumed.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that everything `body` captures
    /// outlives the fiber (the sequential engine runs all fibers to
    /// completion — or leaks their stacks deliberately on abnormal
    /// engine teardown — before the borrowed data goes away).
    pub(crate) unsafe fn new(body: Box<dyn FnOnce()>) -> Fiber {
        let words = stack_bytes() / std::mem::size_of::<u128>();
        let mut stack = Box::new_uninit_slice(words);
        for w in stack.iter_mut().take(CANARY_WORDS) {
            w.write(CANARY);
        }
        let start = Box::into_raw(Box::new(FiberStart { body: Some(body) }));
        let top = stack.as_mut_ptr_range().end as *mut u8;
        let sp = arch::prepare_stack(top, start as *mut u8);
        Fiber {
            stack,
            sp: Cell::new(sp),
        }
    }

    /// Switch from the current context into this fiber, saving the
    /// current context into `from`. Returns when something switches
    /// back into `from`.
    ///
    /// # Safety
    ///
    /// `from` must be the live save-slot of the currently executing
    /// context, and this fiber must be suspended (not running, not
    /// completed beyond its final switch-out).
    pub(crate) unsafe fn resume(&self, from: &ContextSlot) {
        arch::fiber_switch(from.sp.as_ptr(), self.sp.get());
    }

    /// Switch out of this fiber back into `to` (typically the
    /// scheduler's main context), saving this fiber's state so a later
    /// [`Fiber::resume`] continues after this call.
    ///
    /// # Safety
    ///
    /// Must be called from code currently running *on this fiber*.
    pub(crate) unsafe fn suspend_into(&self, to: &ContextSlot) {
        arch::fiber_switch(self.sp.as_ptr(), to.sp.get());
    }

    /// Verify the stack canary; called when the fiber has completed.
    pub(crate) fn check_canary(&self) {
        for (i, w) in self.stack.iter().take(CANARY_WORDS).enumerate() {
            // SAFETY: the canary words were written in `new`.
            let w = unsafe { w.assume_init_ref() };
            assert!(
                *w == CANARY,
                "fiber stack overflow detected (canary word {i} clobbered); \
                 raise SP2SIM_FIBER_STACK_KIB (current stack: {} KiB)",
                self.stack.len() * std::mem::size_of::<u128>() / 1024,
            );
        }
    }
}

/// A save-slot for a context that is not itself a fiber (the scheduler's
/// own OS-thread context), or a borrowed view of a fiber's slot.
pub(crate) struct ContextSlot {
    sp: Cell<*mut u8>,
}

impl ContextSlot {
    pub(crate) fn new() -> ContextSlot {
        ContextSlot {
            sp: Cell::new(std::ptr::null_mut()),
        }
    }
}

/// The entry function every new fiber starts in (reached through the
/// architecture trampoline with `start` as its argument). Runs the body
/// and then aborts: the scheduler must never resume a completed fiber,
/// and the body itself is responsible for switching out one final time
/// (the sequential engine's fiber bodies end with exactly that switch).
extern "C" fn fiber_entry(start: *mut u8) -> ! {
    {
        let start = unsafe { Box::from_raw(start as *mut FiberStart) };
        let body = start.body.expect("fiber body present");
        body();
    }
    // The body returned without switching away for good — that is a bug
    // in the engine (it would return into a dead trampoline frame).
    eprintln!("sp2sim fiber body returned; aborting");
    std::process::abort();
}

#[cfg(target_arch = "x86_64")]
mod arch {
    //! x86-64 System V context switching.
    //!
    //! Saved state: callee-saved GPRs (rbx, rbp, r12-r15), the MXCSR
    //! and x87 control words, and rsp. The switch pushes the state on
    //! the outgoing stack, publishes rsp through `save`, then restores
    //! the mirror image from `target`.

    /// Switch stacks: save the current context to `*save`, restore the
    /// context whose stack pointer is `target`.
    #[unsafe(naked)]
    pub(super) unsafe extern "C" fn fiber_switch(save: *mut *mut u8, target: *mut u8) {
        core::arch::naked_asm!(
            "push rbp",
            "push rbx",
            "push r12",
            "push r13",
            "push r14",
            "push r15",
            "sub rsp, 8",
            "stmxcsr [rsp]",
            "fnstcw [rsp + 4]",
            "mov [rdi], rsp",
            "mov rsp, rsi",
            "ldmxcsr [rsp]",
            "fldcw [rsp + 4]",
            "add rsp, 8",
            "pop r15",
            "pop r14",
            "pop r13",
            "pop r12",
            "pop rbx",
            "pop rbp",
            "ret",
        )
    }

    /// First-resume trampoline: the initial `fiber_switch` "returns"
    /// here with the stack holding the start pointer. Pops it into the
    /// argument register, realigns, and calls [`super::fiber_entry`]
    /// (which never returns).
    #[unsafe(naked)]
    unsafe extern "C" fn fiber_boot() {
        core::arch::naked_asm!(
            "pop rdi",
            "sub rsp, 8",
            "call {entry}",
            "ud2",
            entry = sym super::fiber_entry,
        )
    }

    /// Lay out a fresh stack so the first switch lands in `fiber_boot`
    /// with `start` on the stack. Returns the initial stack pointer.
    pub(super) unsafe fn prepare_stack(top: *mut u8, start: *mut u8) -> *mut u8 {
        debug_assert_eq!(top as usize % 16, 0, "stack top must be 16-aligned");
        let cell = |i: isize| top.offset(-8 * i) as *mut u64;
        // Top of stack, growing down (mirror of the save sequence, so
        // the restore half of `fiber_switch` walks it bottom-up):
        //   [top -  8] 0                (backtrace terminator)
        //   [top - 16] start            (popped by fiber_boot)
        //   [top - 24] fiber_boot       (`ret` target of the switch)
        //   [top - 32..72] rbp..r15 = 0 (popped last-pushed-first)
        //   [top - 80] mxcsr | fcw<<32  (FP control state, restored first)
        *cell(1) = 0;
        *cell(2) = start as u64;
        *cell(3) = fiber_boot as unsafe extern "C" fn() as usize as u64;
        for i in 4..=9 {
            *cell(i) = 0;
        }
        let mxcsr: u32 = 0x1F80; // default: all exceptions masked
        let fcw: u16 = 0x037F; // default x87 control word
        *cell(10) = mxcsr as u64 | ((fcw as u64) << 32);
        cell(10) as *mut u8
    }
}

#[cfg(target_arch = "aarch64")]
mod arch {
    //! AArch64 (AAPCS64) context switching: saves x19-x28, fp, lr and
    //! d8-d15. The first resume `ret`s to `fiber_boot` with the start
    //! pointer pre-loaded into the restored x19.

    #[unsafe(naked)]
    pub(super) unsafe extern "C" fn fiber_switch(save: *mut *mut u8, target: *mut u8) {
        core::arch::naked_asm!(
            "sub sp, sp, #160",
            "stp x19, x20, [sp, #0]",
            "stp x21, x22, [sp, #16]",
            "stp x23, x24, [sp, #32]",
            "stp x25, x26, [sp, #48]",
            "stp x27, x28, [sp, #64]",
            "stp x29, x30, [sp, #80]",
            "stp d8, d9, [sp, #96]",
            "stp d10, d11, [sp, #112]",
            "stp d12, d13, [sp, #128]",
            "stp d14, d15, [sp, #144]",
            "mov x2, sp",
            "str x2, [x0]",
            "mov sp, x1",
            "ldp x19, x20, [sp, #0]",
            "ldp x21, x22, [sp, #16]",
            "ldp x23, x24, [sp, #32]",
            "ldp x25, x26, [sp, #48]",
            "ldp x27, x28, [sp, #64]",
            "ldp x29, x30, [sp, #80]",
            "ldp d8, d9, [sp, #96]",
            "ldp d10, d11, [sp, #112]",
            "ldp d12, d13, [sp, #128]",
            "ldp d14, d15, [sp, #144]",
            "add sp, sp, #160",
            "ret",
        )
    }

    #[unsafe(naked)]
    unsafe extern "C" fn fiber_boot() {
        core::arch::naked_asm!(
            "mov x0, x19",
            "bl {entry}",
            "brk #1",
            entry = sym super::fiber_entry,
        )
    }

    pub(super) unsafe fn prepare_stack(top: *mut u8, start: *mut u8) -> *mut u8 {
        debug_assert_eq!(top as usize % 16, 0, "stack top must be 16-aligned");
        let sp = top.offset(-160);
        std::ptr::write_bytes(sp, 0, 160);
        // x19 slot (offset 0): the start pointer, moved to x0 by boot.
        *(sp as *mut u64) = start as u64;
        // x30 slot (offset 88): the boot trampoline, `ret` target.
        *(sp.offset(88) as *mut u64) = fiber_boot as unsafe extern "C" fn() as usize as u64;
        sp
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod arch {
    //! Unsupported architecture: fibers cannot run. `supported()` is
    //! false here, and the sequential engine refuses to start before
    //! any of these could be reached.

    pub(super) unsafe extern "C" fn fiber_switch(_save: *mut *mut u8, _target: *mut u8) {
        unreachable!("fibers are not supported on this architecture");
    }

    pub(super) unsafe fn prepare_stack(_top: *mut u8, _start: *mut u8) -> *mut u8 {
        unreachable!("fibers are not supported on this architecture");
    }
}

#[cfg(all(test, any(target_arch = "x86_64", target_arch = "aarch64")))]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Drive one fiber that ping-pongs with the main context `rounds`
    /// times by suspending into `main` after each step.
    #[test]
    fn ping_pong_switches() {
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let main = Rc::new(ContextSlot::new());
        let fiber: Rc<RefCell<Option<Fiber>>> = Rc::default();

        let (log2, main2, fiber2) = (Rc::clone(&log), Rc::clone(&main), Rc::clone(&fiber));
        let body = Box::new(move || {
            for i in 0..3u32 {
                log2.borrow_mut().push(i * 2 + 1);
                let f = fiber2.borrow();
                unsafe { f.as_ref().expect("fiber set").suspend_into(&main2) };
            }
            // Final switch-out: the test never resumes again.
            let f = fiber2.borrow();
            unsafe { f.as_ref().expect("fiber set").suspend_into(&main2) };
        });
        *fiber.borrow_mut() = Some(unsafe { Fiber::new(body) });

        for i in 0..3u32 {
            log.borrow_mut().push(i * 2);
            let f = fiber.borrow();
            unsafe { f.as_ref().expect("fiber set").resume(&main) };
        }
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4, 5]);
        fiber.borrow().as_ref().expect("fiber set").check_canary();
    }

    #[test]
    fn fiber_preserves_float_state_across_switches() {
        let main = Rc::new(ContextSlot::new());
        let fiber: Rc<RefCell<Option<Fiber>>> = Rc::default();
        let out: Rc<RefCell<f64>> = Rc::default();

        let (main2, fiber2, out2) = (Rc::clone(&main), Rc::clone(&fiber), Rc::clone(&out));
        let body = Box::new(move || {
            let mut acc = 1.0f64;
            for _ in 0..4 {
                acc = acc * 1.5 + 0.25;
                let f = fiber2.borrow();
                unsafe { f.as_ref().expect("fiber set").suspend_into(&main2) };
            }
            *out2.borrow_mut() = acc;
            let f = fiber2.borrow();
            unsafe { f.as_ref().expect("fiber set").suspend_into(&main2) };
        });
        *fiber.borrow_mut() = Some(unsafe { Fiber::new(body) });

        let mut expect = 1.0f64;
        for _ in 0..4 {
            unsafe { fiber.borrow().as_ref().expect("set").resume(&main) };
            expect = expect * 1.5 + 0.25;
        }
        unsafe { fiber.borrow().as_ref().expect("set").resume(&main) };
        assert_eq!(*out.borrow(), expect);
    }
}
