//! Global message statistics, the raw material for the paper's Tables 2
//! and 3 ("8-Processor Message Totals and Data Totals").
//!
//! Counters are process-global atomics keyed by [`MsgKind`]; additions are
//! order-insensitive so the totals are deterministic even though node
//! threads run concurrently. Local deliveries (a node messaging itself,
//! e.g. the barrier manager's own arrival) are *not* counted, matching the
//! paper's `2 x (n - 1)` message accounting for barriers.

use std::sync::atomic::{AtomicU64, Ordering};

/// Message categories. `Data` and the two `Diff*` kinds carry application
/// data; the rest is synchronization and control traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum MsgKind {
    /// Application payload (message-passing programs).
    Data = 0,
    /// Combined synchronization traffic of message-passing programs
    /// (barriers, handshakes).
    Sync = 1,
    /// DSM diff request.
    DiffReq = 2,
    /// DSM diff response (carries diffs — counted as data volume).
    DiffResp = 3,
    /// DSM lock request (to manager).
    LockReq = 4,
    /// DSM lock request forwarded manager -> holder.
    LockFwd = 5,
    /// DSM lock grant (carries write notices).
    LockGrant = 6,
    /// DSM barrier arrival (carries intervals).
    BarrierArrive = 7,
    /// DSM barrier departure (carries intervals, and loop-control variables
    /// under the improved fork-join interface of Section 2.3).
    BarrierDepart = 8,
    /// Pushed diffs (the Dwarkadas et al. "push" optimization).
    Push = 9,
    /// Broadcast page content (the hand-optimization of Section 5.3).
    Bcast = 10,
    /// Process management (startup/shutdown); excluded from totals.
    Control = 11,
    /// CRI aggregated-validate request: one round trip covering every
    /// page a compiler-described phase will touch.
    ValidateReq = 12,
    /// CRI aggregated-validate response (carries diffs — data volume).
    ValidateResp = 13,
    /// CRI direct-reduction partial, combined up a binomial tree.
    ReducePart = 14,
    /// CRI direct-reduction result, distributed down the tree.
    ReduceResult = 15,
    /// HLRC eager diff flush from a writer to a page's home node
    /// (carries diffs — counted as data volume).
    HomeFlush = 16,
    /// HLRC whole-page fetch request to a page's home node.
    PageReq = 17,
    /// HLRC whole-page fetch response (carries page content — data).
    PageResp = 18,
}

/// Number of `MsgKind` variants.
pub const NKINDS: usize = 19;

/// All message kinds, in discriminant order.
pub const ALL_KINDS: [MsgKind; NKINDS] = [
    MsgKind::Data,
    MsgKind::Sync,
    MsgKind::DiffReq,
    MsgKind::DiffResp,
    MsgKind::LockReq,
    MsgKind::LockFwd,
    MsgKind::LockGrant,
    MsgKind::BarrierArrive,
    MsgKind::BarrierDepart,
    MsgKind::Push,
    MsgKind::Bcast,
    MsgKind::Control,
    MsgKind::ValidateReq,
    MsgKind::ValidateResp,
    MsgKind::ReducePart,
    MsgKind::ReduceResult,
    MsgKind::HomeFlush,
    MsgKind::PageReq,
    MsgKind::PageResp,
];

impl MsgKind {
    /// True for categories that represent application data movement
    /// rather than synchronization.
    pub fn is_data(self) -> bool {
        // Reduction partials/results carry application values, like the
        // hand-coded versions' allreduce messages (MsgKind::Data): both
        // sides of the SPF+CRI vs message-passing comparison count them.
        matches!(
            self,
            MsgKind::Data
                | MsgKind::DiffResp
                | MsgKind::Push
                | MsgKind::Bcast
                | MsgKind::ValidateResp
                | MsgKind::ReducePart
                | MsgKind::ReduceResult
                | MsgKind::HomeFlush
                | MsgKind::PageResp
        )
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MsgKind::Data => "data",
            MsgKind::Sync => "sync",
            MsgKind::DiffReq => "diff-req",
            MsgKind::DiffResp => "diff-resp",
            MsgKind::LockReq => "lock-req",
            MsgKind::LockFwd => "lock-fwd",
            MsgKind::LockGrant => "lock-grant",
            MsgKind::BarrierArrive => "barr-arr",
            MsgKind::BarrierDepart => "barr-dep",
            MsgKind::Push => "push",
            MsgKind::Bcast => "bcast",
            MsgKind::Control => "control",
            MsgKind::ValidateReq => "val-req",
            MsgKind::ValidateResp => "val-resp",
            MsgKind::ReducePart => "red-part",
            MsgKind::ReduceResult => "red-res",
            MsgKind::HomeFlush => "home-flush",
            MsgKind::PageReq => "page-req",
            MsgKind::PageResp => "page-resp",
        }
    }
}

/// Process-global network counters for one cluster run.
#[derive(Default)]
pub struct NetStats {
    msgs: [AtomicU64; NKINDS],
    bytes: [AtomicU64; NKINDS],
}

impl NetStats {
    /// Fresh, zeroed counters.
    pub fn new() -> NetStats {
        NetStats::default()
    }

    /// Record one message of `kind` with `payload_bytes` of payload.
    #[inline]
    pub fn record(&self, kind: MsgKind, payload_bytes: usize) {
        self.msgs[kind as usize].fetch_add(1, Ordering::Relaxed);
        self.bytes[kind as usize].fetch_add(payload_bytes as u64, Ordering::Relaxed);
    }

    /// Consistent copy of the counters. Callers are responsible for
    /// quiescing the cluster (e.g. via a rendezvous) if they need an exact
    /// cut; totals-at-end are always exact.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        for k in 0..NKINDS {
            s.msgs[k] = self.msgs[k].load(Ordering::Relaxed);
            s.bytes[k] = self.bytes[k].load(Ordering::Relaxed);
        }
        s
    }
}

/// A point-in-time copy of [`NetStats`], supporting subtraction so the
/// harness can report deltas over the timed region only (the paper excludes
/// startup iterations from its measurements).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Message counts by kind.
    pub msgs: [u64; NKINDS],
    /// Payload bytes by kind.
    pub bytes: [u64; NKINDS],
}

impl StatsSnapshot {
    /// Total messages across categories (excluding `Control`).
    pub fn total_messages(&self) -> u64 {
        ALL_KINDS
            .iter()
            .filter(|k| !matches!(k, MsgKind::Control))
            .map(|&k| self.msgs[k as usize])
            .sum()
    }

    /// Total payload bytes across categories (excluding `Control`).
    pub fn total_bytes(&self) -> u64 {
        ALL_KINDS
            .iter()
            .filter(|k| !matches!(k, MsgKind::Control))
            .map(|&k| self.bytes[k as usize])
            .sum()
    }

    /// Total payload kilobytes, rounded like the paper's tables.
    pub fn total_kbytes(&self) -> u64 {
        self.total_bytes() / 1024
    }

    /// Messages counted for a single kind.
    pub fn messages(&self, kind: MsgKind) -> u64 {
        self.msgs[kind as usize]
    }

    /// Bytes counted for a single kind.
    pub fn bytes_of(&self, kind: MsgKind) -> u64 {
        self.bytes[kind as usize]
    }

    /// Data-movement bytes (see [`MsgKind::is_data`]).
    pub fn data_bytes(&self) -> u64 {
        ALL_KINDS
            .iter()
            .filter(|k| k.is_data())
            .map(|&k| self.bytes[k as usize])
            .sum()
    }

    /// `self - earlier`, elementwise. Panics in debug builds if counters
    /// would go negative (snapshots taken out of order).
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let mut d = StatsSnapshot::default();
        for k in 0..NKINDS {
            debug_assert!(self.msgs[k] >= earlier.msgs[k]);
            d.msgs[k] = self.msgs[k] - earlier.msgs[k];
            d.bytes[k] = self.bytes[k] - earlier.bytes[k];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = NetStats::new();
        s.record(MsgKind::Data, 100);
        s.record(MsgKind::Data, 50);
        s.record(MsgKind::Sync, 0);
        s.record(MsgKind::Control, 8);
        let snap = s.snapshot();
        assert_eq!(snap.messages(MsgKind::Data), 2);
        assert_eq!(snap.bytes_of(MsgKind::Data), 150);
        // Control traffic is excluded from the table totals.
        assert_eq!(snap.total_messages(), 3);
        assert_eq!(snap.total_bytes(), 150);
    }

    #[test]
    fn delta_subtracts() {
        let s = NetStats::new();
        s.record(MsgKind::DiffResp, 1024);
        let a = s.snapshot();
        s.record(MsgKind::DiffResp, 1024);
        s.record(MsgKind::DiffReq, 16);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.messages(MsgKind::DiffResp), 1);
        assert_eq!(d.messages(MsgKind::DiffReq), 1);
        assert_eq!(d.total_bytes(), 1040);
    }

    #[test]
    fn data_kinds_classification() {
        assert!(MsgKind::Data.is_data());
        assert!(MsgKind::DiffResp.is_data());
        assert!(MsgKind::Push.is_data());
        assert!(!MsgKind::Sync.is_data());
        assert!(!MsgKind::BarrierArrive.is_data());
        assert!(!MsgKind::LockReq.is_data());
    }
}
