//! Virtual-time event tracing: the typed event model and the per-track
//! ring buffer the simulator records into.
//!
//! This crate sits *below* `sp2sim` in the dependency graph and knows
//! nothing about the simulator: events carry numeric message-kind and
//! opcode codes, not the simulator's own enums, so the layering stays
//! acyclic. `sp2sim` owns the recording hooks (one [`TraceBuf`] per
//! endpoint, single-writer, no locks on the hot path), `harness` owns
//! the analysis and the Chrome/Perfetto export.
//!
//! Two clocks stamp every event:
//!
//! * `vt_us` — the owning endpoint's *virtual* clock at the moment of
//!   recording, in microseconds. On an app endpoint this is monotone
//!   non-decreasing; on a service endpoint it acts as a link clock and
//!   may jump backwards between requests from different peers.
//! * `host_ns` — host wall time in nanoseconds since the run started.
//!   Purely diagnostic; deterministic comparisons must scrub it (see
//!   [`Event::scrubbed`]).
//!
//! Recording never advances a virtual clock and never sends a message,
//! so a traced run is bit-identical to an untraced one in every
//! simulated observable.

/// Configuration for a trace recording: today just the per-track ring
/// capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSpec {
    /// Maximum events retained per track (per endpoint). When a track
    /// overflows, the *oldest* events are overwritten and
    /// [`TrackTrace::dropped`] counts the loss; analyzers must refuse to
    /// claim exact breakdowns over a lossy track.
    pub capacity: usize,
}

impl Default for TraceSpec {
    fn default() -> TraceSpec {
        // Generous: a full Jacobi run at harness scales records a few
        // hundred thousand events per node. The buffer grows on demand
        // (amortized doubling, no per-event allocation) up to this cap.
        TraceSpec { capacity: 1 << 20 }
    }
}

/// Which of a node's two endpoints a track belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TracePort {
    /// The application thread: the node's main virtual clock.
    App = 0,
    /// The protocol service loop (interrupt-style request handler).
    Service = 1,
}

impl TracePort {
    pub fn label(self) -> &'static str {
        match self {
            TracePort::App => "app",
            TracePort::Service => "service",
        }
    }
}

/// Span kinds recorded by the runtime layers. Every kind maps to one
/// [`Category`] for the paper's Figure-2-style time breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// An SPF loop body (arg = loop id). The only kind in the Compute
    /// category: everything outside explicit spans is *uncovered*
    /// remainder, which the analyzer reports separately.
    Compute,
    /// Blocked in a barrier (manager round trip + release wait).
    BarrierWait,
    /// Worker parked between fork-join phases waiting for a fork.
    ForkWait,
    /// Master waiting for workers' join messages.
    JoinWait,
    /// Blocked acquiring a lock token.
    LockWait,
    /// Blocked receiving reduction contributions.
    ReduceWait,
    /// Blocked in a plain message-passing receive (`mpl`).
    RecvWait,
    /// Receiving pushed pages/diffs at a sync point.
    PushRecv,
    /// Page-fault handling on the app thread (twin/diff fetch+apply).
    Fault,
    /// Applying a diff (nested under Fault/PushRecv/Validate).
    DiffApply,
    /// CRI validate (hinted pre-loop fetch).
    Validate,
    /// Publishing writes at a release (twin→diff, HLRC home flush).
    Publish,
    /// Eagerly pushing diffs/pages at a sync point.
    PushSend,
    /// HLRC fetching pages from their homes.
    HomeFetch,
    /// Inspector/executor inspection walk (arg = loop id).
    Inspect,
}

impl SpanKind {
    pub const ALL: [SpanKind; 15] = [
        SpanKind::Compute,
        SpanKind::BarrierWait,
        SpanKind::ForkWait,
        SpanKind::JoinWait,
        SpanKind::LockWait,
        SpanKind::ReduceWait,
        SpanKind::RecvWait,
        SpanKind::PushRecv,
        SpanKind::Fault,
        SpanKind::DiffApply,
        SpanKind::Validate,
        SpanKind::Publish,
        SpanKind::PushSend,
        SpanKind::HomeFetch,
        SpanKind::Inspect,
    ];

    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::BarrierWait => "barrier-wait",
            SpanKind::ForkWait => "fork-wait",
            SpanKind::JoinWait => "join-wait",
            SpanKind::LockWait => "lock-wait",
            SpanKind::ReduceWait => "reduce-wait",
            SpanKind::RecvWait => "recv-wait",
            SpanKind::PushRecv => "push-recv",
            SpanKind::Fault => "fault",
            SpanKind::DiffApply => "diff-apply",
            SpanKind::Validate => "validate",
            SpanKind::Publish => "publish",
            SpanKind::PushSend => "push-send",
            SpanKind::HomeFetch => "home-fetch",
            SpanKind::Inspect => "inspect",
        }
    }

    /// The breakdown category this span's *self time* is charged to.
    pub fn category(self) -> Category {
        match self {
            SpanKind::Compute => Category::Compute,
            SpanKind::BarrierWait
            | SpanKind::ForkWait
            | SpanKind::JoinWait
            | SpanKind::LockWait
            | SpanKind::ReduceWait
            | SpanKind::RecvWait
            | SpanKind::PushRecv => Category::Wait,
            SpanKind::Fault
            | SpanKind::DiffApply
            | SpanKind::Validate
            | SpanKind::Publish
            | SpanKind::PushSend
            | SpanKind::HomeFetch
            | SpanKind::Inspect => Category::Service,
        }
    }
}

/// The four-way time attribution of the paper's Figure 2: computation,
/// synchronization wait, protocol service on the app's critical path,
/// and wire occupancy of sends.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    Compute,
    Wait,
    Service,
    Wire,
}

impl Category {
    pub const ALL: [Category; 4] = [
        Category::Compute,
        Category::Wait,
        Category::Service,
        Category::Wire,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Category::Compute => "compute",
            Category::Wait => "wait",
            Category::Service => "service",
            Category::Wire => "wire",
        }
    }
}

/// The causal role of an [`EventKind::Edge`] event — why a service-side
/// (or self-delivered) message was sent. Purely diagnostic labels for
/// the critical-path analyzer; the graph structure lives in the seq ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EdgeKind {
    /// A request/response pair (diff, validate, page, reduce hops).
    Response,
    /// A lock grant: the request (or the holder's release) enabled it.
    LockHandoff,
    /// A barrier departure: the last arrival released everyone.
    BarrierRelease,
    /// A fork departure: the master's fork (or the last worker arrival)
    /// dispatched the epoch.
    Fork,
    /// The join upcall to the master: the last worker arrival (or the
    /// master's own join call) completed the epoch.
    Join,
}

impl EdgeKind {
    pub const ALL: [EdgeKind; 5] = [
        EdgeKind::Response,
        EdgeKind::LockHandoff,
        EdgeKind::BarrierRelease,
        EdgeKind::Fork,
        EdgeKind::Join,
    ];

    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::Response => "response",
            EdgeKind::LockHandoff => "lock-handoff",
            EdgeKind::BarrierRelease => "barrier-release",
            EdgeKind::Fork => "fork",
            EdgeKind::Join => "join",
        }
    }
}

/// What happened. Message kinds and service opcodes are carried as the
/// simulator's numeric discriminants (`code`, `op`) so this crate needs
/// no upward dependency; the exporter maps them back to labels.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A span opens. `arg` is kind-specific (loop id, lock id, barrier
    /// id, …); zero when unused.
    Begin { kind: SpanKind, arg: u32 },
    /// The innermost open span of `kind` closes.
    End { kind: SpanKind },
    /// A cross-node message left this endpoint. `wire_us` is the
    /// occupancy charged to the sender's clock — the Wire category debit
    /// of the enclosing span. `seq` is the packet's correlation id
    /// (unique per run, sender endpoint encoded in the top bits); the
    /// matching consume carries the same id in its `Recv` event.
    Send {
        code: u8,
        bytes: u32,
        peer: u16,
        wire_us: f64,
        seq: u64,
    },
    /// A message was consumed by a blocking receive (stamped after the
    /// clock advanced to arrival + receive overhead). `seq` matches the
    /// packet's `Send` event (self-delivered packets have a seq but no
    /// `Send` event); `wait_us` is how long the consumer's clock had to
    /// jump forward to the packet's arrival — positive iff the receive
    /// actually blocked, i.e. iff the message is on the consumer's
    /// critical path.
    Recv {
        code: u8,
        bytes: u32,
        peer: u16,
        seq: u64,
        wait_us: f64,
    },
    /// A protocol service loop dispatched a request (service track
    /// only). `dur_us` is the nominal per-request service cost.
    Service { op: u32, dur_us: f64 },
    /// An epoch boundary: all spans of epoch `index` have ended by the
    /// time this instant is recorded.
    Epoch { index: u32 },
    /// A causal edge: packet `out_seq` (sent from this node, usually by
    /// its service loop) was enabled by packet `cause_seq`, and
    /// `vt_us` is the virtual time of the enabling moment (request
    /// arrival, release time, last barrier arrival). `cause_seq == 0`
    /// means the cause was local: the node's own application track at
    /// `vt_us` (e.g. a lock grant gated by the holder's release).
    Edge {
        kind: EdgeKind,
        out_seq: u64,
        cause_seq: u64,
    },
}

/// One recorded event. `Copy`, no heap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Owning endpoint's virtual clock, microseconds.
    pub vt_us: f64,
    /// Host wall time since run start, nanoseconds. Nondeterministic.
    pub host_ns: u64,
    pub kind: EventKind,
}

impl Event {
    /// The event with its nondeterministic host timestamp zeroed —
    /// what determinism tests compare.
    pub fn scrubbed(self) -> Event {
        Event { host_ns: 0, ..self }
    }
}

/// A bounded single-writer event ring. Grows by amortized doubling up
/// to `capacity`, then wraps, overwriting the oldest events and
/// counting them in `dropped`.
#[derive(Debug)]
pub struct TraceBuf {
    events: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl TraceBuf {
    pub fn new(capacity: usize) -> TraceBuf {
        let capacity = capacity.max(2);
        TraceBuf {
            // Modest initial reservation; doubling takes over from here.
            events: Vec::with_capacity(capacity.min(1024)),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    #[inline]
    pub fn push(&mut self, e: Event) {
        if self.events.len() < self.capacity {
            self.events.push(e);
        } else {
            self.events[self.head] = e;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain into chronological order (oldest retained event first).
    pub fn into_events(mut self) -> (Vec<Event>, u64) {
        self.events.rotate_left(self.head);
        (self.events, self.dropped)
    }
}

/// The finished event stream of one endpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct TrackTrace {
    pub node: u32,
    pub port: TracePort,
    /// Chronological (recording order; `vt_us` is monotone only on
    /// [`TracePort::App`] tracks).
    pub events: Vec<Event>,
    /// Events lost to ring overflow (oldest-first). Zero means the
    /// stream is complete.
    pub dropped: u64,
}

/// Everything a traced run produced: one track per endpoint plus each
/// node's final virtual clock (the denominator of the breakdown).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceData {
    /// Sorted by `(node, port)`.
    pub tracks: Vec<TrackTrace>,
    /// `final_us[node]` = that node's app clock at the end of the run.
    pub final_us: Vec<f64>,
}

impl TraceData {
    pub fn sort_tracks(&mut self) {
        self.tracks.sort_by_key(|t| (t.node, t.port));
    }

    pub fn track(&self, node: u32, port: TracePort) -> Option<&TrackTrace> {
        self.tracks
            .iter()
            .find(|t| t.node == node && t.port == port)
    }

    /// Total events across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(vt: f64, kind: EventKind) -> Event {
        Event {
            vt_us: vt,
            host_ns: 7,
            kind,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut b = TraceBuf::new(4);
        for i in 0..6 {
            b.push(ev(i as f64, EventKind::Epoch { index: i }));
        }
        let (events, dropped) = b.into_events();
        assert_eq!(dropped, 2);
        let vts: Vec<f64> = events.iter().map(|e| e.vt_us).collect();
        assert_eq!(vts, vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn ring_without_overflow_is_lossless_in_order() {
        let mut b = TraceBuf::new(16);
        for i in 0..5 {
            b.push(ev(i as f64, EventKind::Epoch { index: i }));
        }
        assert_eq!(b.dropped(), 0);
        let (events, dropped) = b.into_events();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].vt_us < w[1].vt_us));
    }

    #[test]
    fn scrub_zeroes_only_host_time() {
        let e = ev(
            3.5,
            EventKind::End {
                kind: SpanKind::Fault,
            },
        );
        let s = e.scrubbed();
        assert_eq!(s.host_ns, 0);
        assert_eq!(s.vt_us, e.vt_us);
        assert_eq!(s.kind, e.kind);
    }

    #[test]
    fn every_span_kind_has_a_category_and_label() {
        for k in SpanKind::ALL {
            assert!(!k.label().is_empty());
            let _ = k.category();
        }
        for c in Category::ALL {
            assert!(!c.label().is_empty());
        }
        for e in EdgeKind::ALL {
            assert!(!e.label().is_empty());
        }
    }
}
