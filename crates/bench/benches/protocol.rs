//! Benchmarks of the protocol axis: the same access patterns under the
//! original distributed-diff protocol (LRC) and home-based LRC (HLRC).
//! The interesting comparison is the multi-writer access miss — one
//! whole-page home fetch vs one diff round trip per writer — and the
//! price HLRC pays for it at every release (eager home flushes).

use criterion::{criterion_group, criterion_main, Criterion};
use sp2sim::{Cluster, ClusterConfig, EngineKind};
use treadmarks::{ProtocolMode, Tmk, TmkConfig};

const PW: usize = 512;

/// Four writers fill disjoint quarters of four shared pages; a fifth
/// node then reads everything. LRC pays four diff round trips per page,
/// HLRC one whole-page fetch per page.
fn bench_multi_writer_miss(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let run = |protocol: ProtocolMode| {
        Cluster::run(
            ClusterConfig::sp2_on(5, EngineKind::Sequential),
            move |node| {
                let tmk = Tmk::new(node, TmkConfig::default().with_protocol(protocol));
                let len = PW * 4;
                let a = tmk.malloc_f64(len);
                let me = tmk.proc_id();
                if me < 4 {
                    // Strided quarters: every page gets all four writers.
                    for page in 0..4 {
                        let lo = page * PW + me * (PW / 4);
                        let mut w = tmk.write(a, lo..lo + PW / 4);
                        for (i, x) in w.slice_mut().iter_mut().enumerate() {
                            *x = (me * len + i) as f64;
                        }
                    }
                }
                tmk.barrier(0);
                if me == 4 {
                    let r = tmk.read(a, 0..len);
                    std::hint::black_box(r.slice()[PW]);
                }
                tmk.barrier(1);
                tmk.finish();
            },
        )
    };
    g.bench_function("multi_writer_miss_lrc", |b| {
        b.iter(|| run(ProtocolMode::Lrc))
    });
    g.bench_function("multi_writer_miss_hlrc", |b| {
        b.iter(|| run(ProtocolMode::Hlrc))
    });
    g.finish();
}

/// A producer/consumer ping over four rounds of barriers: the steady
/// state where HLRC's eager flushes ride every release whether or not a
/// consumer shows up.
fn bench_release_flush_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let run = |protocol: ProtocolMode| {
        Cluster::run(
            ClusterConfig::sp2_on(2, EngineKind::Sequential),
            move |node| {
                let tmk = Tmk::new(node, TmkConfig::default().with_protocol(protocol));
                let a = tmk.malloc_f64(PW * 8);
                for round in 0..4u32 {
                    if tmk.proc_id() == 0 {
                        let mut w = tmk.write(a, 0..PW * 8);
                        for (i, x) in w.slice_mut().iter_mut().enumerate() {
                            *x = (i + round as usize) as f64;
                        }
                    }
                    tmk.barrier(round);
                    if tmk.proc_id() == 1 {
                        let r = tmk.read(a, 0..PW * 8);
                        std::hint::black_box(r.slice()[PW]);
                    }
                    tmk.barrier(100 + round);
                }
                tmk.finish();
            },
        )
    };
    g.bench_function("producer_consumer_lrc", |b| {
        b.iter(|| run(ProtocolMode::Lrc))
    });
    g.bench_function("producer_consumer_hlrc", |b| {
        b.iter(|| run(ProtocolMode::Hlrc))
    });
    g.finish();
}

criterion_group!(benches, bench_multi_writer_miss, bench_release_flush_cost);
criterion_main!(benches);
