//! Simulator-throughput benchmarks: the quantities the hot-path work
//! (chunked diff compare, scratch-arena twin recycling, pre-sized wire
//! buffers) moves. `dsm_primitives` times the protocol *machinery*;
//! this group times the *simulator as a tool* — how much simulated time
//! a host second buys — which is what the committed `BENCH_sweep.json`
//! trajectory tracks across commits.

use criterion::{criterion_group, criterion_main, Criterion};

use apps::{AppId, Version};
use sp2sim::EngineKind;
use treadmarks::Diff;

/// Diff creation across the density spectrum. `identical` is the
/// chunked compare's best case (every 8-word block skipped on one
/// branch), `dense` its run-extension fast path, `sparse` the mixed
/// case with one run per block.
fn bench_diff_create(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff_create");
    const WORDS: usize = 512;
    let old = vec![0u64; WORDS];
    let mut sparse = old.clone();
    for i in (0..WORDS).step_by(16) {
        sparse[i] = 1;
    }
    let dense: Vec<u64> = (0..WORDS).map(|i| i as u64 + 1).collect();
    let identical = old.clone();

    for (name, new) in [
        ("identical", &identical),
        ("sparse", &sparse),
        ("dense", &dense),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| Diff::create(std::hint::black_box(&old), std::hint::black_box(new)))
        });
    }
    g.finish();
}

/// End-to-end sims/sec: a full compiler-parallelized Jacobi run on 8
/// simulated processors, per engine. Each run covers a fixed amount of
/// simulated time (printed up front — it is deterministic per engine),
/// so dividing it by the reported wall time per iteration gives the
/// sims/sec the sweep trajectory tracks.
fn bench_jacobi_sims_per_sec(c: &mut Criterion) {
    let mut g = c.benchmark_group("jacobi_8p");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    const SCALE: f64 = 0.05;
    for engine in EngineKind::ALL {
        let sim_us = apps::runner::run_on(engine, AppId::Jacobi, Version::Spf, 8, SCALE).time_us;
        eprintln!("jacobi_8p/spf_{engine}: {sim_us} simulated us per iteration");
        g.bench_function(format!("spf_{engine}"), |b| {
            b.iter(|| apps::runner::run_on(engine, AppId::Jacobi, Version::Spf, 8, SCALE).time_us)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_diff_create, bench_jacobi_sims_per_sec);
criterion_main!(benches);
