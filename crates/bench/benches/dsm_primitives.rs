//! Microbenchmarks of the DSM machinery: the building blocks whose costs
//! the paper identifies as the overheads of software shared memory
//! (twinning, diffing, page faults, synchronization).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use sp2sim::{Cluster, ClusterConfig, EngineKind};
use treadmarks::{Diff, Tmk, TmkConfig};

fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    let old = vec![0u64; 512];
    let mut sparse = old.clone();
    for i in (0..512).step_by(16) {
        sparse[i] = 1;
    }
    let dense: Vec<u64> = (0..512).map(|i| i as u64 + 1).collect();

    g.bench_function("create_sparse_page", |b| {
        b.iter(|| Diff::create(std::hint::black_box(&old), std::hint::black_box(&sparse)))
    });
    g.bench_function("create_dense_page", |b| {
        b.iter(|| Diff::create(std::hint::black_box(&old), std::hint::black_box(&dense)))
    });
    let d = Diff::create(&old, &dense);
    g.bench_function("apply_dense_page", |b| {
        b.iter_batched(
            || old.clone(),
            |mut page| d.apply(&mut page),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_sync(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.bench_function("barrier_8procs", |b| {
        b.iter(|| {
            Cluster::run(ClusterConfig::sp2(8), |node| {
                let tmk = Tmk::new(node, TmkConfig::default());
                for i in 0..10 {
                    tmk.barrier(i);
                }
                tmk.finish();
            })
        })
    });
    g.bench_function("lock_chain_4procs", |b| {
        b.iter(|| {
            Cluster::run(ClusterConfig::sp2(4), |node| {
                let tmk = Tmk::new(node, TmkConfig::default());
                let a = tmk.malloc_f64(1);
                for _ in 0..5 {
                    tmk.acquire(3);
                    let v = tmk.read_one(a, 0);
                    tmk.write_one(a, 0, v + 1.0);
                    tmk.release(3);
                }
                tmk.barrier(0);
                tmk.finish();
            })
        })
    });
    g.bench_function("forkjoin_improved_4procs", |b| {
        b.iter(|| forkjoin_cycles(TmkConfig::default()))
    });
    g.bench_function("forkjoin_original_4procs", |b| {
        b.iter(|| forkjoin_cycles(TmkConfig::legacy_forkjoin()))
    });
    g.finish();
}

/// Ten fork-join cycles under the given interface configuration; returns
/// total simulated microseconds (the §2.3 comparison quantity).
fn forkjoin_cycles(cfg: TmkConfig) -> f64 {
    let out = Cluster::run(ClusterConfig::sp2(4), move |node| {
        let tmk = Tmk::new(node, cfg.clone());
        let spf = spf::Spf::new(&tmk);
        let body = spf.register(|_ctl: &spf::LoopCtl| {});
        spf.run(|m| {
            for _ in 0..10 {
                m.par_loop(body, 0..16, spf::Schedule::Block, &[]);
            }
        });
        tmk.finish();
    });
    out.elapsed.us()
}

fn bench_fault_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    // One writer fills 16 pages; one reader faults them in, with and
    // without request aggregation.
    let run = |aggregation: bool| {
        Cluster::run(ClusterConfig::sp2(2), move |node| {
            let tmk = Tmk::new(
                node,
                TmkConfig {
                    aggregation,
                    ..TmkConfig::default()
                },
            );
            let a = tmk.malloc_f64(512 * 16);
            if tmk.proc_id() == 0 {
                let mut w = tmk.write(a, 0..512 * 16);
                for (i, x) in w.slice_mut().iter_mut().enumerate() {
                    *x = i as f64;
                }
            }
            tmk.barrier(0);
            if tmk.proc_id() == 1 {
                let r = tmk.read(a, 0..512 * 16);
                std::hint::black_box(r.slice()[100]);
            }
            tmk.barrier(1);
            tmk.finish();
        })
    };
    g.bench_function("16_pages_per_page_requests", |b| b.iter(|| run(false)));
    g.bench_function("16_pages_aggregated", |b| b.iter(|| run(true)));
    g.finish();
}

/// Both execution engines on identical workloads: the threaded backend
/// pays thread spawns, channel synchronization and futex waits; the
/// sequential backend pays two user-space context switches per blocking
/// receive. The gap is the engine refactor's headline number.
fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1500));
    for engine in EngineKind::ALL {
        g.bench_function(format!("quickstart_8p_{engine}"), |b| {
            b.iter(|| apps::demo::quickstart(engine, 8).elapsed.us())
        });
        g.bench_function(format!("barrier_8p_{engine}"), |b| {
            b.iter(|| {
                Cluster::run(ClusterConfig::sp2_on(8, engine), |node| {
                    let tmk = Tmk::new(node, TmkConfig::default());
                    for i in 0..10 {
                        tmk.barrier(i);
                    }
                    tmk.finish();
                })
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_diff,
    bench_sync,
    bench_fault_path,
    bench_engines
);
criterion_main!(benches);
