//! One benchmark group per paper table/figure, running scaled-down
//! versions of the experiment sweeps. (The harness binaries print the
//! full paper-shaped tables; these benchmarks track the cost of
//! regenerating each artifact and pin the qualitative orderings.)

use bench::BENCH_SCALE;
use criterion::{criterion_group, criterion_main, Criterion};

use apps::runner::run_on;
use apps::{run, AppId, Version};
use sp2sim::EngineKind;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_sequential");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for app in AppId::ALL {
        g.bench_function(app.name(), |b| {
            b.iter(|| run(app, Version::Seq, 1, BENCH_SCALE))
        });
    }
    g.finish();
}

fn bench_fig1_regular(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_tab2_regular");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for app in AppId::REGULAR {
        for v in Version::FIGURE {
            g.bench_function(format!("{}/{}", app.name(), v.name()), |b| {
                b.iter(|| run(app, v, 4, BENCH_SCALE))
            });
        }
    }
    g.finish();
}

fn bench_fig2_irregular(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_tab3_irregular");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for app in AppId::IRREGULAR {
        for v in Version::FIGURE {
            g.bench_function(format!("{}/{}", app.name(), v.name()), |b| {
                b.iter(|| run(app, v, 4, BENCH_SCALE))
            });
        }
    }
    g.finish();
}

fn bench_sec5_handopt(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec5_handopt");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for app in [AppId::Jacobi, AppId::Shallow, AppId::Mgs, AppId::Fft3d] {
        g.bench_function(app.name(), |b| {
            b.iter(|| run(app, Version::HandOpt, 4, BENCH_SCALE))
        });
    }
    g.finish();
}

fn bench_sec23_interface(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec23_interface");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.bench_function("jacobi_improved", |b| {
        b.iter(|| {
            apps::runner::run_with_cfg(
                AppId::Jacobi,
                Version::Spf,
                4,
                BENCH_SCALE,
                treadmarks::TmkConfig::default(),
            )
        })
    });
    g.bench_function("jacobi_original", |b| {
        b.iter(|| {
            apps::runner::run_with_cfg(
                AppId::Jacobi,
                Version::Spf,
                4,
                BENCH_SCALE,
                treadmarks::TmkConfig::legacy_forkjoin(),
            )
        })
    });
    g.finish();
}

/// The full Figure-1 sweep cost per execution engine: what regenerating
/// a paper artifact costs on the threaded backend vs the deterministic
/// sequential backend (which is also what the harness parallelizes).
fn bench_sweep_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_engine");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1500));
    for engine in EngineKind::ALL {
        g.bench_function(format!("jacobi_all_versions_{engine}"), |b| {
            b.iter(|| {
                for v in Version::FIGURE {
                    run_on(engine, AppId::Jacobi, v, 4, BENCH_SCALE);
                }
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig1_regular,
    bench_fig2_irregular,
    bench_sec5_handopt,
    bench_sec23_interface,
    bench_sweep_engines
);
criterion_main!(benches);
