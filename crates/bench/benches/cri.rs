//! Benchmarks of the compiler–runtime interface's three mechanisms
//! against the unhinted protocol paths they replace: aggregated
//! validate vs demand fault-in, barrier-time push vs demand pull, and
//! direct tree reduction vs lock-and-shared-page folding.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2sim::{Cluster, ClusterConfig, EngineKind};
use treadmarks::{Tmk, TmkConfig};

const PAGES: usize = 16;
const PW: usize = 512;

/// One writer fills `PAGES` pages; the reader brings them in — by
/// faulting page by page, or by one aggregated validate.
fn bench_validate_vs_fault(c: &mut Criterion) {
    let mut g = c.benchmark_group("cri");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let run = |validate: bool| {
        Cluster::run(
            ClusterConfig::sp2_on(2, EngineKind::Sequential),
            move |node| {
                let tmk = Tmk::new(node, TmkConfig::default());
                let a = tmk.malloc_f64(PW * PAGES);
                if tmk.proc_id() == 0 {
                    let mut w = tmk.write(a, 0..PW * PAGES);
                    for (i, x) in w.slice_mut().iter_mut().enumerate() {
                        *x = i as f64;
                    }
                }
                tmk.barrier(0);
                if tmk.proc_id() == 1 {
                    if validate {
                        tmk.validate(&[(a, 0..PW * PAGES)]);
                    }
                    let r = tmk.read(a, 0..PW * PAGES);
                    std::hint::black_box(r.slice()[PW]);
                }
                tmk.barrier(1);
                tmk.finish();
            },
        )
    };
    g.bench_function("fault_in_16_pages", |b| b.iter(|| run(false)));
    g.bench_function("validate_16_pages", |b| b.iter(|| run(true)));
    g.finish();
}

/// The same producer/consumer exchange over a barrier — with the
/// consumer pulling on demand, or the producer pushing at the barrier.
fn bench_push_vs_pull(c: &mut Criterion) {
    let mut g = c.benchmark_group("cri");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let run = |push: bool| {
        Cluster::run(
            ClusterConfig::sp2_on(2, EngineKind::Sequential),
            move |node| {
                let tmk = Tmk::new(node, TmkConfig::default());
                let a = tmk.malloc_f64(PW * PAGES);
                for round in 0..4u32 {
                    if tmk.proc_id() == 0 {
                        let mut w = tmk.write(a, 0..PW * PAGES);
                        for (i, x) in w.slice_mut().iter_mut().enumerate() {
                            *x = (i + round as usize) as f64;
                        }
                        drop(w);
                        if push {
                            tmk.push_at_next_sync(1, a, 0..PW * PAGES);
                        }
                    }
                    tmk.barrier(round);
                    if tmk.proc_id() == 1 {
                        let r = tmk.read(a, 0..PW * PAGES);
                        std::hint::black_box(r.slice()[PW]);
                    }
                    tmk.barrier(100 + round);
                }
                tmk.finish();
            },
        )
    };
    g.bench_function("pull_16_pages_4_rounds", |b| b.iter(|| run(false)));
    g.bench_function("push_16_pages_4_rounds", |b| b.iter(|| run(true)));
    g.finish();
}

/// Scalar sum reduction on 8 nodes: the SPF lock-and-shared-page fold
/// vs the direct binomial-tree combine.
fn bench_reduce_direct_vs_lock(c: &mut Criterion) {
    let mut g = c.benchmark_group("cri");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let run = |direct: bool| {
        Cluster::run(
            ClusterConfig::sp2_on(8, EngineKind::Sequential),
            move |node| {
                let tmk = Tmk::new(node, TmkConfig::default());
                let var = tmk.malloc_f64(1);
                let me = tmk.proc_id() as f64;
                for round in 0..3u32 {
                    if direct {
                        let t = tmk.reduce(&[me + 1.0]);
                        std::hint::black_box(t[0]);
                    } else {
                        if tmk.proc_id() == 0 {
                            tmk.write_one(var, 0, 0.0);
                        }
                        tmk.barrier(round);
                        tmk.acquire(1);
                        let cur = tmk.read_one(var, 0);
                        tmk.write_one(var, 0, cur + me + 1.0);
                        tmk.release(1);
                        tmk.barrier(100 + round);
                        std::hint::black_box(tmk.read_one(var, 0));
                    }
                }
                tmk.finish();
            },
        )
    };
    g.bench_function("reduce_lock_fold_8p", |b| b.iter(|| run(false)));
    g.bench_function("reduce_direct_tree_8p", |b| b.iter(|| run(true)));
    g.finish();
}

criterion_group!(
    benches,
    bench_validate_vs_fault,
    bench_push_vs_pull,
    bench_reduce_direct_vs_lock
);
criterion_main!(benches);
