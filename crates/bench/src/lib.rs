//! # bench — criterion benchmarks for the reproduction
//!
//! Two benchmark suites (see `benches/`):
//!
//! * `dsm_primitives` — microbenchmarks of the TreadMarks machinery:
//!   diff creation/application, twin management, barrier and lock
//!   round-trips, view faults, the fork-join interfaces;
//! * `paper_experiments` — one benchmark group per paper table/figure,
//!   running scaled-down versions of the experiment sweeps (the harness
//!   binaries produce the full-size numbers; criterion tracks the
//!   simulator's wall-clock performance per artifact).

/// Default problem scale for the benchmark sweeps (kept small so
/// `cargo bench` completes quickly; the harness binaries accept
/// `scale = 1.0` for paper-sized runs).
pub const BENCH_SCALE: f64 = 0.03;
