//! Collective operations: binomial trees and pairwise exchanges.
//!
//! Message counts (for `n` processes):
//!
//! | collective        | messages            |
//! |-------------------|---------------------|
//! | `barrier`         | `2 (n - 1)` (gather-up + release-down tree) |
//! | `bcast` (tree)    | `n - 1`             |
//! | `bcast_flat`      | `n - 1`, serialized at the root (models the XHPF run-time's naive broadcast) |
//! | `reduce`          | `n - 1`             |
//! | `allreduce`       | `2 (n - 1)`         |
//! | `gather`/`allgather` | `n - 1` / `2 (n - 1)` |
//! | `alltoall`        | `n (n - 1)` pairwise |

use sp2sim::{f64s_to_words, words_to_f64s, MsgKind, SpanKind};

use crate::comm::{Comm, ReduceOp};

impl<'a> Comm<'a> {
    /// Tree barrier: gather to rank 0 up a binomial tree, release down it.
    pub fn barrier(&self) {
        let tag = self.next_coll_tag();
        let me = self.rank();
        let n = self.size();
        if n == 1 {
            return;
        }
        let _s = self.node.trace_span(SpanKind::BarrierWait, tag);
        // Gather phase: receive from each child, then report to the parent.
        let mut mask = 1;
        while mask < n {
            if me & mask != 0 {
                self.node.send(me & !mask, tag, MsgKind::Sync, Vec::new());
                break;
            }
            let child = me | mask;
            if child < n {
                self.node.recv_from(child, tag);
            }
            mask <<= 1;
        }
        // Release phase: wait for the parent, then release our subtree.
        // A node's children carry masks strictly below its lowest set bit.
        let lsb = if me == 0 {
            n.next_power_of_two()
        } else {
            me & me.wrapping_neg()
        };
        if me != 0 {
            self.node.recv_from(me - lsb, tag + 1);
        }
        let mut m = lsb >> 1;
        while m > 0 {
            let child = me | m;
            if child < n {
                self.node.send(child, tag + 1, MsgKind::Sync, Vec::new());
            }
            m >>= 1;
        }
    }

    /// Binomial-tree broadcast of raw words from `root`.
    pub fn bcast(&self, root: usize, data: &mut Vec<u64>) {
        let tag = self.next_coll_tag();
        let n = self.size();
        let _s = self.node.trace_span(SpanKind::RecvWait, tag);
        // Re-rank so the root is virtual rank 0.
        let vrank = (self.rank() + n - root) % n;
        let mut mask = 1;
        // Find our parent (first set bit of vrank).
        while mask < n {
            if vrank & mask != 0 {
                let vparent = vrank & !mask;
                let parent = (vparent + root) % n;
                *data = self.node.recv_from(parent, tag).payload;
                break;
            }
            mask <<= 1;
        }
        if vrank == 0 {
            mask = n.next_power_of_two();
        }
        // Forward to children (bits below our first set bit).
        let mut child_mask = mask >> 1;
        while child_mask > 0 {
            let vchild = vrank | child_mask;
            if vchild < n && vchild != vrank {
                let child = (vchild + root) % n;
                self.node.send(child, tag, MsgKind::Data, data.clone());
            }
            child_mask >>= 1;
        }
    }

    /// Broadcast a slice of `f64`s from `root` (tree).
    pub fn bcast_f64s(&self, root: usize, data: &mut Vec<f64>) {
        let mut words = if self.rank() == root {
            f64s_to_words(data)
        } else {
            Vec::new()
        };
        self.bcast(root, &mut words);
        if self.rank() != root {
            *data = words_to_f64s(&words);
        }
    }

    /// Flat (serialized) broadcast: the root sends `n - 1` individual
    /// messages back to back. This is how the mid-90s XHPF run-time
    /// broadcast partitions; the serialization at the root is a real cost
    /// the paper's XHPF numbers include.
    pub fn bcast_flat_f64s(&self, root: usize, data: &mut Vec<f64>) {
        let tag = self.next_coll_tag();
        let _s = self.node.trace_span(SpanKind::RecvWait, tag);
        if self.rank() == root {
            let words = f64s_to_words(data);
            for dst in 0..self.size() {
                if dst != root {
                    self.node.send(dst, tag, MsgKind::Data, words.clone());
                }
            }
        } else {
            *data = words_to_f64s(&self.node.recv_from(root, tag).payload);
        }
    }

    /// Binomial-tree reduction of `f64` vectors to `root`. Returns the
    /// reduced vector on the root, `None` elsewhere.
    pub fn reduce_f64s(&self, root: usize, op: ReduceOp, data: &[f64]) -> Option<Vec<f64>> {
        let tag = self.next_coll_tag();
        let _s = self.node.trace_span(SpanKind::ReduceWait, tag);
        let n = self.size();
        let vrank = (self.rank() + n - root) % n;
        let mut acc = data.to_vec();
        let mut mask = 1;
        while mask < n {
            if vrank & mask != 0 {
                let vparent = vrank & !mask;
                let parent = (vparent + root) % n;
                self.node
                    .send(parent, tag, MsgKind::Data, f64s_to_words(&acc));
                return None;
            }
            let vchild = vrank | mask;
            if vchild < n {
                let child = (vchild + root) % n;
                let got = words_to_f64s(&self.node.recv_from(child, tag).payload);
                op.fold(&mut acc, &got);
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Reduce to rank 0 then tree-broadcast the result: `2 (n - 1)`
    /// messages total, the classic PVM-era all-reduce.
    pub fn allreduce_f64s(&self, op: ReduceOp, data: &[f64]) -> Vec<f64> {
        let reduced = self.reduce_f64s(0, op, data);
        let mut out = reduced.unwrap_or_default();
        self.bcast_f64s(0, &mut out);
        out
    }

    /// All-reduce with the `Sum` operator.
    pub fn allreduce_sum_f64(&self, data: &[f64]) -> Vec<f64> {
        self.allreduce_f64s(ReduceOp::Sum, data)
    }

    /// Reduce a single scalar to every rank.
    pub fn allreduce_scalar(&self, op: ReduceOp, x: f64) -> f64 {
        self.allreduce_f64s(op, &[x])[0]
    }

    /// Gather variable-length word vectors to `root` (flat, `n - 1`
    /// messages). Returns `Some(vec indexed by rank)` at the root.
    pub fn gather(&self, root: usize, data: &[u64]) -> Option<Vec<Vec<u64>>> {
        let tag = self.next_coll_tag();
        let _s = self.node.trace_span(SpanKind::RecvWait, tag);
        if self.rank() == root {
            let mut out: Vec<Vec<u64>> = (0..self.size()).map(|_| Vec::new()).collect();
            out[root] = data.to_vec();
            for _ in 0..self.size() - 1 {
                let p = self.node.recv_match(|p| p.tag == tag);
                out[p.src] = p.payload;
            }
            Some(out)
        } else {
            self.node.send(root, tag, MsgKind::Data, data.to_vec());
            None
        }
    }

    /// Gather `f64` vectors to `root`.
    pub fn gather_f64s(&self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        self.gather(root, &f64s_to_words(data))
            .map(|vs| vs.iter().map(|v| words_to_f64s(v)).collect())
    }

    /// All-gather: gather to rank 0, then broadcast the concatenation.
    pub fn allgather_f64s(&self, data: &[f64]) -> Vec<Vec<f64>> {
        let gathered = self.gather(0, &f64s_to_words(data));
        let mut flat: Vec<u64> = Vec::new();
        let mut lens: Vec<u64> = Vec::new();
        if let Some(vs) = gathered {
            for v in &vs {
                lens.push(v.len() as u64);
                flat.extend_from_slice(v);
            }
        }
        self.bcast(0, &mut lens);
        self.bcast(0, &mut flat);
        let mut out = Vec::with_capacity(self.size());
        let mut off = 0usize;
        for &l in &lens {
            let l = l as usize;
            out.push(words_to_f64s(&flat[off..off + l]));
            off += l;
        }
        out
    }

    /// Pairwise all-to-all exchange: `bufs[r]` is sent to rank `r`; the
    /// returned vector holds what each rank sent us. `n (n - 1)` messages
    /// cluster-wide.
    pub fn alltoall_f64s(&self, bufs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(bufs.len(), self.size());
        let tag = self.next_coll_tag();
        let _s = self.node.trace_span(SpanKind::RecvWait, tag);
        let me = self.rank();
        let n = self.size();
        let mut out: Vec<Vec<f64>> = (0..n).map(|_| Vec::new()).collect();
        out[me] = bufs[me].clone();
        // Symmetric pairwise schedule: in round r exchange with me ^ r.
        for r in 1..n.next_power_of_two() {
            let peer = me ^ r;
            if peer >= n {
                continue;
            }
            self.node
                .send(peer, tag, MsgKind::Data, f64s_to_words(&bufs[peer]));
            let p = self.node.recv_from(peer, tag);
            out[peer] = words_to_f64s(&p.payload);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2sim::{Cluster, ClusterConfig};

    fn run<R: Send>(n: usize, f: impl Fn(&Comm) -> R + Sync) -> sp2sim::RunOutput<R> {
        Cluster::run(ClusterConfig::sp2(n), move |node| f(&Comm::new(node)))
    }

    #[test]
    fn barrier_message_count_is_2n_minus_2() {
        for n in [2usize, 3, 4, 5, 8] {
            let out = run(n, |c| c.barrier());
            assert_eq!(
                out.stats.total_messages(),
                2 * (n as u64 - 1),
                "barrier on {n} nodes"
            );
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [1usize, 2, 3, 5, 8] {
            for root in 0..n {
                let out = run(n, |c| {
                    let mut v = if c.rank() == root {
                        vec![7, 8, 9]
                    } else {
                        vec![]
                    };
                    c.bcast(root, &mut v);
                    v
                });
                for r in out.results {
                    assert_eq!(r, vec![7, 8, 9]);
                }
            }
        }
    }

    #[test]
    fn bcast_message_count_is_n_minus_1() {
        let out = run(8, |c| {
            let mut v = if c.rank() == 0 { vec![1] } else { vec![] };
            c.bcast(0, &mut v);
        });
        assert_eq!(out.stats.total_messages(), 7);
    }

    #[test]
    fn flat_bcast_matches_tree_values() {
        let out = run(6, |c| {
            let mut v = if c.rank() == 2 {
                vec![3.5, -1.0]
            } else {
                vec![]
            };
            c.bcast_flat_f64s(2, &mut v);
            v
        });
        for r in out.results {
            assert_eq!(r, vec![3.5, -1.0]);
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for n in [1usize, 2, 4, 7, 8] {
            let out = run(n, |c| {
                c.reduce_f64s(0, ReduceOp::Sum, &[c.rank() as f64, 1.0])
            });
            let expect: f64 = (0..n).map(|r| r as f64).sum();
            assert_eq!(out.results[0].as_ref().unwrap()[0], expect);
            assert_eq!(out.results[0].as_ref().unwrap()[1], n as f64);
            for r in 1..n {
                assert!(out.results[r].is_none());
            }
        }
    }

    #[test]
    fn allreduce_min_max() {
        let out = run(5, |c| {
            let lo = c.allreduce_scalar(ReduceOp::Min, c.rank() as f64);
            let hi = c.allreduce_scalar(ReduceOp::Max, c.rank() as f64);
            (lo, hi)
        });
        for (lo, hi) in out.results {
            assert_eq!(lo, 0.0);
            assert_eq!(hi, 4.0);
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let out = run(4, |c| c.gather_f64s(2, &[c.rank() as f64 * 2.0]));
        let at_root = out.results[2].as_ref().unwrap();
        assert_eq!(at_root.len(), 4);
        for (r, got) in at_root.iter().enumerate() {
            assert_eq!(*got, vec![r as f64 * 2.0]);
        }
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let out = run(3, |c| c.allgather_f64s(&[c.rank() as f64; 2]));
        for r in out.results {
            assert_eq!(r[0], vec![0.0, 0.0]);
            assert_eq!(r[1], vec![1.0, 1.0]);
            assert_eq!(r[2], vec![2.0, 2.0]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let out = run(4, |c| {
            let me = c.rank() as f64;
            let bufs: Vec<Vec<f64>> = (0..4).map(|d| vec![me * 10.0 + d as f64]).collect();
            c.alltoall_f64s(&bufs)
        });
        for (me, r) in out.results.iter().enumerate() {
            for (src, got) in r.iter().enumerate() {
                assert_eq!(*got, vec![src as f64 * 10.0 + me as f64]);
            }
        }
    }

    #[test]
    fn barrier_aligns_clocks_forward() {
        let out = Cluster::run(ClusterConfig::sp2(4), |node| {
            let c = Comm::new(node);
            node.advance(1000.0 * node.id() as f64);
            c.barrier();
            node.now().us()
        });
        // Everyone's clock is now at least the latest arrival (3000us).
        for t in out.results {
            assert!(t >= 3000.0);
        }
    }
}
