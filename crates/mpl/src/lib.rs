//! # mpl — message-passing library over the simulated SP/2
//!
//! Models the two message-passing layers of the paper:
//!
//! * **MPL** — IBM's user-level communication library, used by TreadMarks
//!   and by the XHPF run-time system as transport;
//! * **PVMe** — IBM's optimized PVM implementation, used by the hand-coded
//!   message-passing programs.
//!
//! Both reduce to the same primitive operations on the simulated switch, so
//! this crate provides a single [`Comm`] type with typed point-to-point
//! transfers and the collectives the applications need (binomial-tree
//! broadcast and reduce, all-reduce, barrier, gather, all-gather,
//! all-to-all). Collective algorithms are the standard hypercube/binomial
//! constructions of the era; their message counts — e.g. `n - 1` messages
//! for a tree broadcast, `2 (n - 1)` for a tree barrier — are what the
//! paper's Tables 2 and 3 reflect for the PVMe programs.
//!
//! ## Example
//!
//! ```
//! use sp2sim::{Cluster, ClusterConfig};
//! use mpl::Comm;
//!
//! let out = Cluster::run(ClusterConfig::sp2(4), |node| {
//!     let comm = Comm::new(node);
//!     let x = vec![comm.rank() as f64];
//!     let sum = comm.allreduce_sum_f64(&x);
//!     sum[0]
//! });
//! assert!(out.results.iter().all(|&s| s == 6.0));
//! ```

pub mod collectives;
pub mod comm;

pub use comm::{Comm, ReduceOp};
