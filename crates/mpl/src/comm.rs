//! The communicator: typed point-to-point operations.

use std::cell::Cell;

use sp2sim::{f64s_to_words, words_to_f64s, MsgKind, Node, SpanKind};

/// Reduction operators over `f64` vectors (elementwise).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    /// Combine `b` into `a`.
    #[inline]
    pub fn fold(self, a: &mut [f64], b: &[f64]) {
        debug_assert_eq!(a.len(), b.len());
        match self {
            ReduceOp::Sum => a.iter_mut().zip(b).for_each(|(x, y)| *x += y),
            ReduceOp::Max => a.iter_mut().zip(b).for_each(|(x, y)| *x = x.max(*y)),
            ReduceOp::Min => a.iter_mut().zip(b).for_each(|(x, y)| *x = x.min(*y)),
        }
    }
}

/// Tag space layout: user tags must stay below this; collectives use a
/// per-operation sequence number above it so that back-to-back collectives
/// never cross-match.
pub(crate) const COLLECTIVE_TAG_BASE: u32 = 1 << 20;

/// A communicator bound to one simulated node.
///
/// Point-to-point operations transfer `u64` words or `f64` slices; each
/// call is one message on the simulated switch. Collectives live in
/// [`crate::collectives`] and are exposed as inherent methods.
pub struct Comm<'a> {
    pub(crate) node: &'a Node,
    pub(crate) coll_seq: Cell<u32>,
}

impl<'a> Comm<'a> {
    /// Bind a communicator to a node.
    pub fn new(node: &'a Node) -> Comm<'a> {
        Comm {
            node,
            coll_seq: Cell::new(0),
        }
    }

    /// This process's rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.node.id()
    }

    /// Number of processes.
    #[inline]
    pub fn size(&self) -> usize {
        self.node.nprocs()
    }

    /// The underlying simulated node.
    #[inline]
    pub fn node(&self) -> &Node {
        self.node
    }

    /// Send raw words to `dst` with a user `tag` (must be `< 2^20`).
    pub fn send(&self, dst: usize, tag: u32, data: &[u64]) {
        debug_assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^20");
        self.node.send(dst, tag, MsgKind::Data, data.to_vec());
    }

    /// Receive raw words from `src` with `tag`.
    pub fn recv(&self, src: usize, tag: u32) -> Vec<u64> {
        let _s = self.node.trace_span(SpanKind::RecvWait, tag);
        self.node.recv_from(src, tag).payload
    }

    /// Send a slice of `f64`s.
    pub fn send_f64s(&self, dst: usize, tag: u32, data: &[f64]) {
        debug_assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^20");
        self.node.send(dst, tag, MsgKind::Data, f64s_to_words(data));
    }

    /// Receive a slice of `f64`s.
    pub fn recv_f64s(&self, src: usize, tag: u32) -> Vec<f64> {
        let _s = self.node.trace_span(SpanKind::RecvWait, tag);
        words_to_f64s(&self.node.recv_from(src, tag).payload)
    }

    /// Combined send+receive (both directions in flight at once), the
    /// natural idiom for boundary exchange in the hand-coded programs.
    pub fn sendrecv_f64s(
        &self,
        dst: usize,
        send_tag: u32,
        data: &[f64],
        src: usize,
        recv_tag: u32,
    ) -> Vec<f64> {
        self.send_f64s(dst, send_tag, data);
        self.recv_f64s(src, recv_tag)
    }

    /// A zero-payload synchronization message (PVMe programs signal with
    /// empty messages when they need pure synchronization).
    pub fn send_signal(&self, dst: usize, tag: u32) {
        debug_assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^20");
        self.node.send(dst, tag, MsgKind::Sync, Vec::new());
    }

    /// Receive a zero-payload synchronization message.
    pub fn recv_signal(&self, src: usize, tag: u32) {
        let _s = self.node.trace_span(SpanKind::RecvWait, tag);
        let p = self.node.recv_from(src, tag);
        debug_assert!(p.payload.is_empty());
    }

    /// Allocate a fresh tag block for one collective operation.
    pub(crate) fn next_coll_tag(&self) -> u32 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s.wrapping_add(1));
        COLLECTIVE_TAG_BASE + (s % 0xFFFF) * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2sim::{Cluster, ClusterConfig};

    #[test]
    fn p2p_roundtrip() {
        let out = Cluster::run(ClusterConfig::sp2(2), |node| {
            let comm = Comm::new(node);
            if comm.rank() == 0 {
                comm.send_f64s(1, 5, &[1.5, 2.5]);
                comm.recv_f64s(1, 6)
            } else {
                let v = comm.recv_f64s(0, 5);
                comm.send_f64s(0, 6, &[v[0] + v[1]]);
                v
            }
        });
        assert_eq!(out.results[0], vec![4.0]);
        assert_eq!(out.results[1], vec![1.5, 2.5]);
    }

    #[test]
    fn sendrecv_exchanges_boundaries() {
        let out = Cluster::run(ClusterConfig::sp2(2), |node| {
            let comm = Comm::new(node);
            let me = comm.rank();
            let other = 1 - me;
            comm.sendrecv_f64s(other, 1, &[me as f64], other, 1)
        });
        assert_eq!(out.results[0], vec![1.0]);
        assert_eq!(out.results[1], vec![0.0]);
    }

    #[test]
    fn signals_have_no_payload_bytes() {
        let out = Cluster::run(ClusterConfig::sp2(2), |node| {
            let comm = Comm::new(node);
            if comm.rank() == 0 {
                comm.send_signal(1, 9);
            } else {
                comm.recv_signal(0, 9);
            }
        });
        assert_eq!(out.stats.total_messages(), 1);
        assert_eq!(out.stats.total_bytes(), 0);
    }

    #[test]
    fn reduce_op_folds() {
        let mut a = vec![1.0, 5.0, -2.0];
        ReduceOp::Sum.fold(&mut a, &[1.0, 1.0, 1.0]);
        assert_eq!(a, vec![2.0, 6.0, -1.0]);
        ReduceOp::Max.fold(&mut a, &[0.0, 10.0, 0.0]);
        assert_eq!(a, vec![2.0, 10.0, 0.0]);
        ReduceOp::Min.fold(&mut a, &[-7.0, 20.0, 0.5]);
        assert_eq!(a, vec![-7.0, 10.0, 0.0]);
    }
}
