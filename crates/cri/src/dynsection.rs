//! Dynamic section descriptors (the inspector/executor data format).
//!
//! A [`DynSection`] is what an inspector loop produces when it walks a
//! run-time indirection map: the set of touched word indices, compacted
//! into sorted run-length ranges. Unlike a [`Section`] it has no
//! algebraic structure — it is the *materialized* access set — but it
//! enumerates through the same `word_ranges` interface, so the hint
//! engine's validate/push/home-placement machinery consumes both
//! uniformly through [`SectionSet`].

use std::ops::Range;

use crate::section::{merge_ranges, Section, TriSection};

/// A dynamic section: sorted, merged word-index runs — the run-length
/// compacted image of an indirection map walk.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct DynSection {
    runs: Vec<Range<usize>>,
}

impl DynSection {
    /// Compact an unordered stream of touched word indices. Duplicates
    /// collapse; adjacent indices merge into runs.
    pub fn from_indices(indices: impl IntoIterator<Item = usize>) -> DynSection {
        DynSection {
            runs: merge_ranges(indices.into_iter().map(|i| i..i + 1).collect()),
        }
    }

    /// Compact a set of (possibly overlapping, unordered) runs.
    pub fn from_runs(runs: Vec<Range<usize>>) -> DynSection {
        DynSection {
            runs: merge_ranges(runs),
        }
    }

    /// The sorted maximal runs.
    pub fn runs(&self) -> &[Range<usize>] {
        &self.runs
    }

    /// True when no words are described.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of words described.
    pub fn words(&self) -> usize {
        self.runs.iter().map(|r| r.end - r.start).sum()
    }

    /// Enumerate as maximal contiguous word ranges (already canonical).
    pub fn word_ranges(&self) -> Vec<Range<usize>> {
        self.runs.clone()
    }

    /// Merge another section's words into this one — dynamic and
    /// rectangular descriptors compose (an inspector result unioned with
    /// the regular part the compiler *could* describe).
    pub fn union(&mut self, other: &SectionSet) {
        let mut runs = std::mem::take(&mut self.runs);
        runs.extend(other.word_ranges());
        self.runs = merge_ranges(runs);
    }
}

impl From<&Section> for DynSection {
    fn from(s: &Section) -> DynSection {
        DynSection {
            runs: s.word_ranges(),
        }
    }
}

/// Any of the three descriptor shapes a loop access can carry: the
/// compiler's rectangular [`Section`], its triangular extension
/// [`TriSection`], or an inspector-materialized [`DynSection`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SectionSet {
    /// Regular (rectangular strided) section.
    Regular(Section),
    /// Triangular section (inner bounds affine in the outer index).
    Tri(TriSection),
    /// Dynamic section (inspector-materialized run list).
    Dyn(DynSection),
}

impl SectionSet {
    /// True when no words are described.
    pub fn is_empty(&self) -> bool {
        match self {
            SectionSet::Regular(s) => s.is_empty(),
            SectionSet::Tri(s) => s.is_empty(),
            SectionSet::Dyn(s) => s.is_empty(),
        }
    }

    /// Number of words described.
    pub fn words(&self) -> usize {
        match self {
            SectionSet::Regular(s) => s.words(),
            SectionSet::Tri(s) => s.words(),
            SectionSet::Dyn(s) => s.words(),
        }
    }

    /// Enumerate as maximal contiguous word ranges (sorted, merged).
    pub fn word_ranges(&self) -> Vec<Range<usize>> {
        match self {
            SectionSet::Regular(s) => s.word_ranges(),
            SectionSet::Tri(s) => s.word_ranges(),
            SectionSet::Dyn(s) => s.word_ranges(),
        }
    }
}

impl From<Section> for SectionSet {
    fn from(s: Section) -> SectionSet {
        SectionSet::Regular(s)
    }
}

impl From<TriSection> for SectionSet {
    fn from(s: TriSection) -> SectionSet {
        SectionSet::Tri(s)
    }
}

impl From<DynSection> for SectionSet {
    fn from(s: DynSection) -> SectionSet {
        SectionSet::Dyn(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_compact_into_runs() {
        let d = DynSection::from_indices([9, 3, 4, 5, 4, 10, 100]);
        assert_eq!(d.runs(), &[3..6, 9..11, 100..101]);
        assert_eq!(d.words(), 6);
        assert!(!d.is_empty());
        assert!(DynSection::from_indices([]).is_empty());
    }

    #[test]
    fn union_merges_with_regular_sections() {
        let mut d = DynSection::from_indices([0, 1, 2]);
        d.union(&Section::range(3..10).into());
        assert_eq!(d.runs(), &[0..10]);
    }

    #[test]
    fn section_set_dispatches_enumeration() {
        let reg: SectionSet = Section::range(5..8).into();
        assert_eq!(reg.word_ranges(), vec![5..8]);
        assert_eq!(reg.words(), 3);
        let dy: SectionSet = DynSection::from_indices([1, 7]).into();
        assert_eq!(dy.word_ranges(), vec![1..2, 7..8]);
        let tri: SectionSet = TriSection::cyclic_cols(0..4, 1, 2, 10, 0..10).into();
        assert_eq!(tri.word_ranges(), vec![10..20, 30..40]);
        assert!(!tri.is_empty());
    }

    #[test]
    fn dyn_from_section_matches_its_ranges() {
        let s = Section::strided(0..3, 10, 2..5);
        let d = DynSection::from(&s);
        assert_eq!(d.word_ranges(), s.word_ranges());
    }
}
