//! # cri — the compiler–runtime interface for the DSM
//!
//! The paper's conclusion attributes most of the SPF-on-TreadMarks gap
//! to information the compiler had and the runtime did not: which pages
//! a parallel loop will fault, who consumes the data it produces, and
//! which shared updates are really reductions. This crate is that
//! interface, following the integrated compile-time/run-time approach of
//! Dwarkadas, Cox & Zwaenepoel:
//!
//! * [`Section`] — **regular-section access descriptors** (lo/hi/stride
//!   per dimension) the compiler attaches to each parallelized loop,
//!   extended by [`TriSection`] (triangular: inner bounds affine in the
//!   outer index, for `DO J = I+1, N`-shaped nests) and [`DynSection`]
//!   (dynamic: the run-length-compacted image of an inspector's
//!   indirection-map walk, registered through
//!   [`HintEngine::register_dynamic`] and memoized in a per-`(loop,
//!   range, node)` schedule cache — see the `inspector` crate);
//! * [`Access`] / [`AccessFn`] — a loop's touched sections, evaluated
//!   per node from the dispatched iteration range, with read/write mode
//!   and (for writes) the known [`Consumer`]s;
//! * [`HintEngine`] — evaluates descriptors around every loop body:
//!   an **aggregated validate** (one round trip per writer for all pages
//!   the phase will fault — [`treadmarks::Tmk::validate`]) before the
//!   body, and **barrier-time push** registrations (producer pushes the
//!   page overlap to each consumer with the next rendezvous —
//!   [`treadmarks::Tmk::push_page_at_next_sync`]) after it.
//!
//! The third mechanism, **direct reductions**, lives on the DSM handle
//! itself ([`treadmarks::Tmk::reduce`]): partials combine up a binomial
//! tree in `2 (n - 1)` messages instead of folding into a lock-guarded
//! shared page.
//!
//! Under the home-based protocol ([`treadmarks::ProtocolMode::Hlrc`])
//! the descriptors additionally drive **home placement**: before a
//! hinted body runs, every page exactly one node's write section covers
//! is re-homed at that node ([`HintEngine::declare_homes`]), so the
//! declared producer's eager flushes become local no-ops; and a push to
//! a consumer that *is* the page's home is skipped — the regular home
//! flush already carries the same diff there. This is the per-page
//! push-vs-home-flush choice of a hinted body.
//!
//! Hints are *performance-only*: every validate fetches exactly the
//! diffs a fault would have fetched, every push delivers diffs the
//! consumer would have requested (gapped pushes are dropped, not
//! misapplied), so hinted and unhinted executions produce byte-identical
//! shared memory. `tests/cri_equivalence.rs` pins that property.
//!
//! ## Example
//!
//! ```
//! use sp2sim::{Cluster, ClusterConfig};
//! use treadmarks::{Tmk, TmkConfig};
//! use cri::{Access, HintEngine, Section};
//!
//! let out = Cluster::run(ClusterConfig::sp2(2), |node| {
//!     let tmk = Tmk::new(node, TmkConfig::default());
//!     let hints = HintEngine::new(&tmk);
//!     let a = tmk.malloc_f64(1024);
//!     // "Loop 0 writes the block `iters` of `a`, read next by loop 1."
//!     hints.set(0, move |iters, me, np| {
//!         let r = spf_like_block(me, np, iters.clone());
//!         vec![Access::write(a, Section::range(r)).consumed_by_loop(1, 0..1024)]
//!     });
//!     hints.set(1, move |_iters, _me, _np| {
//!         vec![Access::read(a, Section::range(0..1024))]
//!     });
//!     // ... the fork-join runtime invokes before_loop/after_loop around
//!     // each dispatched body (see the `spf` crate).
//!     tmk.finish();
//! });
//!
//! fn spf_like_block(me: usize, np: usize, r: std::ops::Range<usize>) -> std::ops::Range<usize> {
//!     let len = (r.end - r.start) / np;
//!     r.start + me * len..r.start + (me + 1) * len
//! }
//! ```

pub mod dynsection;
pub mod hints;
pub mod section;

pub use dynsection::{DynSection, SectionSet};
pub use hints::{Access, AccessFn, AccessMode, Consumer, HintEngine};
pub use section::{merge_ranges, AffineBound, Dim, Section, TriSection};

#[cfg(test)]
mod tests {
    use super::*;
    use sp2sim::{Cluster, ClusterConfig, MsgKind};
    use treadmarks::{Tmk, TmkConfig};

    /// before_loop validates everything a phase will read: the body's
    /// views then fault nothing, and the whole exchange is one
    /// ValidateReq/Resp pair per (reader, writer) pair.
    #[test]
    fn before_loop_prevalidates_reads() {
        let out = Cluster::run(ClusterConfig::sp2(2), |node| {
            let tmk = Tmk::new(node, TmkConfig::default());
            let hints = HintEngine::new(&tmk);
            let a = tmk.malloc_f64(512 * 4);
            hints.set(0, move |_iters, me, _np| {
                if me == 1 {
                    vec![Access::read(a, Section::range(0..512 * 4))]
                } else {
                    vec![]
                }
            });
            if tmk.proc_id() == 0 {
                let mut w = tmk.write(a, 0..512 * 4);
                for (i, x) in w.slice_mut().iter_mut().enumerate() {
                    *x = i as f64;
                }
            }
            tmk.barrier(0);
            let mut ok = true;
            if tmk.proc_id() == 1 {
                let validated = hints.before_loop(0, &(0..4));
                assert_eq!(validated, 4);
                let before = tmk.stats_snapshot().faults;
                let r = tmk.read(a, 0..512 * 4);
                ok = (0..512 * 4).all(|i| r[i] == i as f64);
                assert_eq!(tmk.stats_snapshot().faults, before, "reads must not fault");
            }
            tmk.barrier(1);
            tmk.finish();
            ok
        });
        assert!(out.results.iter().all(|&ok| ok));
        assert_eq!(out.stats.messages(MsgKind::ValidateReq), 1);
        assert_eq!(out.stats.messages(MsgKind::DiffReq), 0);
    }

    /// after_loop registers pushes for exactly the page overlap between
    /// the producer's writes and each consumer's declared reads.
    #[test]
    fn after_loop_pushes_producer_consumer_overlap() {
        let out = Cluster::run(ClusterConfig::sp2(2), |node| {
            let tmk = Tmk::new(node, TmkConfig::default());
            let hints = HintEngine::new(&tmk);
            let a = tmk.malloc_f64(512 * 4);
            // Loop 0: node 0 writes the first two pages; loop 1: node 1
            // reads pages 1..3 — the overlap is exactly page 1.
            hints.set(0, move |_iters, me, _np| {
                if me == 0 {
                    vec![Access::write(a, Section::range(0..512 * 2)).consumed_by_loop(1, 0..1)]
                } else {
                    vec![]
                }
            });
            hints.set(1, move |_iters, me, _np| {
                if me == 1 {
                    vec![Access::read(a, Section::range(512..512 * 3))]
                } else {
                    vec![]
                }
            });
            let mut probe = 0.0;
            if tmk.proc_id() == 0 {
                let mut w = tmk.write(a, 0..512 * 2);
                for (i, x) in w.slice_mut().iter_mut().enumerate() {
                    *x = 1.0 + i as f64;
                }
                drop(w);
                let registered = hints.after_loop(0, &(0..1));
                assert_eq!(registered, 1, "only the overlapping page");
            }
            tmk.barrier(0);
            if tmk.proc_id() == 1 {
                let before = tmk.stats_snapshot().faults;
                let r = tmk.read(a, 512..1024); // the pushed page
                probe = r[512];
                assert_eq!(tmk.stats_snapshot().faults, before, "pushed page");
            }
            tmk.barrier(1);
            tmk.finish();
            probe
        });
        assert_eq!(out.results[1], 513.0);
        assert_eq!(out.stats.messages(MsgKind::Push), 1);
    }

    /// Consumer::Node pushes the whole written section to one node's
    /// sequential code.
    #[test]
    fn node_consumer_receives_everything() {
        let out = Cluster::run(ClusterConfig::sp2(3), |node| {
            let tmk = Tmk::new(node, TmkConfig::default());
            let hints = HintEngine::new(&tmk);
            let a = tmk.malloc_f64(512 * 3);
            hints.set(0, move |_iters, me, np| {
                // Each node writes its own page, destined for node 0.
                let r = me * 512..(me + 1) * 512;
                let _ = np;
                vec![Access::write(a, Section::range(r)).consumed_by_node(0)]
            });
            {
                let me = tmk.proc_id();
                let mut w = tmk.write(a, me * 512..(me + 1) * 512);
                for i in me * 512..(me + 1) * 512 {
                    w[i] = me as f64;
                }
            }
            hints.after_loop(0, &(0..3));
            tmk.barrier(0);
            let mut sum = 0.0;
            if tmk.proc_id() == 0 {
                let before = tmk.stats_snapshot().faults;
                let r = tmk.read(a, 0..512 * 3);
                sum = (0..3).map(|q| r[q * 512 + 7]).sum();
                assert_eq!(tmk.stats_snapshot().faults, before);
            }
            tmk.barrier(1);
            tmk.finish();
            sum
        });
        assert_eq!(out.results[0], 3.0);
        // Node 1 and node 2 each push their page; node 0's self-push is
        // dropped at registration.
        assert_eq!(out.stats.messages(MsgKind::Push), 2);
        assert_eq!(out.stats.messages(MsgKind::DiffReq), 0);
    }

    /// HLRC: the declared producer of a single-writer page becomes its
    /// home, so the producer's eager flushes are local no-ops; the push
    /// to the (non-home) consumer still rides the barrier.
    #[test]
    fn declare_homes_makes_the_producer_the_home() {
        let out = Cluster::run(ClusterConfig::sp2(2), |node| {
            let tmk = Tmk::new(node, TmkConfig::hlrc());
            let hints = HintEngine::new(&tmk);
            let a = tmk.malloc_f64(512 * 2);
            hints.set(0, move |_iters, me, _np| {
                if me == 0 {
                    vec![Access::write(a, Section::range(0..512 * 2)).consumed_by_loop(1, 0..1)]
                } else {
                    vec![]
                }
            });
            hints.set(1, move |_iters, me, _np| {
                if me == 1 {
                    vec![Access::read(a, Section::range(0..512 * 2))]
                } else {
                    vec![]
                }
            });
            let accepted = hints.declare_homes(0, &(0..1));
            // Page 1 would be homed at node 1 block-cyclically; the
            // descriptor re-homes both pages at the producer, node 0.
            assert_eq!(tmk.page_home(a.first_page()), 0);
            assert_eq!(tmk.page_home(a.first_page() + 1), 0);
            let mut probe = 0.0;
            if tmk.proc_id() == 0 {
                let mut w = tmk.write(a, 0..512 * 2);
                for (i, x) in w.slice_mut().iter_mut().enumerate() {
                    *x = 1.0 + i as f64;
                }
                drop(w);
                hints.after_loop(0, &(0..1));
            }
            tmk.barrier(0);
            if tmk.proc_id() == 1 {
                let before = tmk.stats_snapshot().faults;
                let r = tmk.read(a, 0..512 * 2);
                probe = r[700];
                assert_eq!(tmk.stats_snapshot().faults, before, "pushed pages");
            }
            tmk.barrier(1);
            tmk.finish();
            (accepted, probe)
        });
        assert_eq!(out.results[0].0, 2, "both pages re-homed (evaluated on 0)");
        assert_eq!(out.results[1].1, 701.0);
        // Producer is the home: no flush traffic; both pages pushed.
        assert_eq!(out.stats.messages(MsgKind::HomeFlush), 0);
        assert_eq!(out.stats.messages(MsgKind::Push), 1);
        assert_eq!(out.stats.messages(MsgKind::PageReq), 0);
    }

    /// HLRC: when a consumer *is* the page's home (re-homing was refused
    /// because the page already had notices), the push is skipped — the
    /// producer's home flush already carries the same diff there.
    #[test]
    fn push_to_home_consumer_is_replaced_by_the_flush() {
        let out = Cluster::run(ClusterConfig::sp2(2), |node| {
            let tmk = Tmk::new(node, TmkConfig::hlrc());
            let hints = HintEngine::new(&tmk);
            // Page 1 is homed at node 1. Pre-existing notices on both
            // pages: node 1 wrote them before the descriptors were ever
            // evaluated.
            let a = tmk.malloc_f64(512 * 2);
            if tmk.proc_id() == 1 {
                let mut w = tmk.write(a, 0..512 * 2);
                for x in w.slice_mut().iter_mut() {
                    *x = 1.0;
                }
            }
            tmk.barrier(0);
            hints.set(0, move |_iters, me, _np| {
                if me == 0 {
                    vec![Access::write(a, Section::range(512..512 * 2)).consumed_by_node(1)]
                } else {
                    vec![]
                }
            });
            let accepted = hints.declare_homes(0, &(0..1));
            assert_eq!(tmk.page_home(a.first_page() + 1), 1, "re-home refused");
            let mut registered = 0;
            if tmk.proc_id() == 0 {
                let _ = tmk.read(a, 512..512 * 2);
                let mut w = tmk.write(a, 512..512 * 2);
                for x in w.slice_mut().iter_mut() {
                    *x = 9.0;
                }
                drop(w);
                registered = hints.after_loop(0, &(0..1));
            }
            tmk.barrier(1);
            let mut probe = 0.0;
            if tmk.proc_id() == 1 {
                probe = tmk.read_one(a, 600); // folds the flush at the home
            }
            tmk.barrier(2);
            tmk.finish();
            (accepted, registered, probe)
        });
        assert_eq!(out.results[0].0, 0, "no override accepted");
        assert_eq!(out.results[0].1, 0, "push to the home is skipped");
        assert_eq!(out.results[1].2, 9.0, "the flush delivered the data");
        assert_eq!(out.stats.messages(MsgKind::Push), 0);
        assert!(out.stats.messages(MsgKind::HomeFlush) >= 1);
    }

    #[test]
    fn loops_without_descriptors_are_untouched() {
        let out = Cluster::run(ClusterConfig::sp2(1), |node| {
            let tmk = Tmk::new(node, TmkConfig::default());
            let hints = HintEngine::new(&tmk);
            assert!(!hints.has(3));
            assert_eq!(hints.before_loop(3, &(0..10)), 0);
            assert_eq!(hints.after_loop(3, &(0..10)), 0);
            tmk.finish();
        });
        assert_eq!(out.stats.total_messages(), 0);
    }
}
