//! Regular-section descriptors (RSDs).
//!
//! A regular section describes the set of array elements a loop nest
//! touches as a small product of strided dimensions — the representation
//! parallelizing compilers (Forge SPF, the Rice compiler of Dwarkadas et
//! al.) derive from subscript analysis of DO loops. The descriptor is
//! pure data: evaluating it enumerates element ranges without running
//! the loop, which is what lets the runtime fetch or push everything a
//! phase needs ahead of the accesses.

use std::ops::Range;

/// One dimension of a regular section: indices `lo..hi`, each scaled by
/// `stride` words. The innermost dimension of a dense access has
/// `stride == 1` and contributes a contiguous run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dim {
    /// First index (inclusive).
    pub lo: usize,
    /// Last index (exclusive).
    pub hi: usize,
    /// Words between consecutive indices.
    pub stride: usize,
}

/// A regular section over a flat (column-major) shared array: the set of
/// word indices `Σ_k i_k · stride_k` for `i_k ∈ lo_k..hi_k`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Dimensions, outermost first.
    pub dims: Vec<Dim>,
}

impl Section {
    /// A contiguous 1-D section.
    pub fn range(r: Range<usize>) -> Section {
        Section {
            dims: vec![Dim {
                lo: r.start,
                hi: r.end,
                stride: 1,
            }],
        }
    }

    /// A column block of a column-major 2-D array with `rows` words per
    /// column: all of columns `cols`.
    pub fn cols(cols: Range<usize>, rows: usize) -> Section {
        Section {
            dims: vec![
                Dim {
                    lo: cols.start,
                    hi: cols.end,
                    stride: rows,
                },
                Dim {
                    lo: 0,
                    hi: rows,
                    stride: 1,
                },
            ],
        }
    }

    /// An `outer`-strided section of contiguous `inner` runs: for each
    /// `i ∈ outer`, words `i·stride + inner.start .. i·stride + inner.end`.
    pub fn strided(outer: Range<usize>, stride: usize, inner: Range<usize>) -> Section {
        Section {
            dims: vec![
                Dim {
                    lo: outer.start,
                    hi: outer.end,
                    stride,
                },
                Dim {
                    lo: inner.start,
                    hi: inner.end,
                    stride: 1,
                },
            ],
        }
    }

    /// True when any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty() || self.dims.iter().any(|d| d.lo >= d.hi)
    }

    /// Number of words described.
    pub fn words(&self) -> usize {
        if self.is_empty() {
            return 0;
        }
        self.dims.iter().map(|d| d.hi - d.lo).product()
    }

    /// Enumerate the section as maximal contiguous word ranges (sorted,
    /// merged). This is what the hint engine hands to
    /// [`treadmarks::Tmk::validate`] and the page-overlap computation.
    pub fn word_ranges(&self) -> Vec<Range<usize>> {
        if self.is_empty() {
            return Vec::new();
        }
        let (outer, last) = self.dims.split_at(self.dims.len() - 1);
        let last = &last[0];
        let mut bases = vec![0usize];
        for d in outer {
            let mut next = Vec::with_capacity(bases.len() * (d.hi - d.lo));
            for b in &bases {
                for i in d.lo..d.hi {
                    next.push(b + i * d.stride);
                }
            }
            bases = next;
        }
        let mut runs: Vec<Range<usize>> = Vec::new();
        for b in bases {
            if last.stride == 1 {
                runs.push(b + last.lo..b + last.hi);
            } else {
                for i in last.lo..last.hi {
                    let w = b + i * last.stride;
                    runs.push(w..w + 1);
                }
            }
        }
        merge_ranges(runs)
    }
}

/// Sort and merge overlapping or adjacent ranges.
pub fn merge_ranges(mut runs: Vec<Range<usize>>) -> Vec<Range<usize>> {
    runs.retain(|r| r.start < r.end);
    runs.sort_by_key(|r| r.start);
    let mut out: Vec<Range<usize>> = Vec::with_capacity(runs.len());
    for r in runs {
        match out.last_mut() {
            Some(last) if r.start <= last.end => last.end = last.end.max(r.end),
            _ => out.push(r),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_range_is_one_run() {
        assert_eq!(Section::range(5..12).word_ranges(), vec![5..12]);
        assert_eq!(Section::range(5..12).words(), 7);
        assert!(Section::range(5..5).is_empty());
        assert!(Section::range(5..5).word_ranges().is_empty());
    }

    #[test]
    fn full_columns_coalesce_into_one_run() {
        // Columns 2..5 of a 10-row array are contiguous in column-major
        // layout: the enumeration must merge them.
        assert_eq!(Section::cols(2..5, 10).word_ranges(), vec![20..50]);
    }

    #[test]
    fn strided_interior_stays_fragmented() {
        // Rows 1..4 of columns 0..3 (10 rows): three runs of three.
        let s = Section {
            dims: vec![
                Dim {
                    lo: 0,
                    hi: 3,
                    stride: 10,
                },
                Dim {
                    lo: 1,
                    hi: 4,
                    stride: 1,
                },
            ],
        };
        assert_eq!(s.word_ranges(), vec![1..4, 11..14, 21..24]);
        assert_eq!(s.words(), 9);
    }

    #[test]
    fn strided_helper_matches_manual_dims() {
        let s = Section::strided(2..4, 100, 10..20);
        assert_eq!(s.word_ranges(), vec![210..220, 310..320]);
    }

    #[test]
    fn non_unit_innermost_stride_enumerates_single_words() {
        let s = Section {
            dims: vec![Dim {
                lo: 0,
                hi: 3,
                stride: 4,
            }],
        };
        assert_eq!(s.word_ranges(), vec![0..1, 4..5, 8..9]);
    }

    #[test]
    fn merge_handles_overlap_and_adjacency() {
        assert_eq!(
            merge_ranges(vec![8..10, 0..4, 4..6, 5..9, 20..20]),
            vec![0..10]
        );
    }
}
