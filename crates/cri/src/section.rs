//! Regular-section descriptors (RSDs).
//!
//! A regular section describes the set of array elements a loop nest
//! touches as a small product of strided dimensions — the representation
//! parallelizing compilers (Forge SPF, the Rice compiler of Dwarkadas et
//! al.) derive from subscript analysis of DO loops. The descriptor is
//! pure data: evaluating it enumerates element ranges without running
//! the loop, which is what lets the runtime fetch or push everything a
//! phase needs ahead of the accesses.

use std::ops::Range;

/// One dimension of a regular section: indices `lo..hi`, each scaled by
/// `stride` words. The innermost dimension of a dense access has
/// `stride == 1` and contributes a contiguous run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dim {
    /// First index (inclusive).
    pub lo: usize,
    /// Last index (exclusive).
    pub hi: usize,
    /// Words between consecutive indices.
    pub stride: usize,
}

/// A regular section over a flat (column-major) shared array: the set of
/// word indices `Σ_k i_k · stride_k` for `i_k ∈ lo_k..hi_k`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Dimensions, outermost first.
    pub dims: Vec<Dim>,
}

impl Section {
    /// A contiguous 1-D section.
    pub fn range(r: Range<usize>) -> Section {
        Section {
            dims: vec![Dim {
                lo: r.start,
                hi: r.end,
                stride: 1,
            }],
        }
    }

    /// A column block of a column-major 2-D array with `rows` words per
    /// column: all of columns `cols`.
    pub fn cols(cols: Range<usize>, rows: usize) -> Section {
        Section {
            dims: vec![
                Dim {
                    lo: cols.start,
                    hi: cols.end,
                    stride: rows,
                },
                Dim {
                    lo: 0,
                    hi: rows,
                    stride: 1,
                },
            ],
        }
    }

    /// An `outer`-strided section of contiguous `inner` runs: for each
    /// `i ∈ outer`, words `i·stride + inner.start .. i·stride + inner.end`.
    pub fn strided(outer: Range<usize>, stride: usize, inner: Range<usize>) -> Section {
        Section {
            dims: vec![
                Dim {
                    lo: outer.start,
                    hi: outer.end,
                    stride,
                },
                Dim {
                    lo: inner.start,
                    hi: inner.end,
                    stride: 1,
                },
            ],
        }
    }

    /// True when any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty() || self.dims.iter().any(|d| d.lo >= d.hi)
    }

    /// Number of words described.
    pub fn words(&self) -> usize {
        if self.is_empty() {
            return 0;
        }
        self.dims.iter().map(|d| d.hi - d.lo).product()
    }

    /// Enumerate the section as maximal contiguous word ranges (sorted,
    /// merged). This is what the hint engine hands to
    /// [`treadmarks::Tmk::validate`] and the page-overlap computation.
    pub fn word_ranges(&self) -> Vec<Range<usize>> {
        if self.is_empty() {
            return Vec::new();
        }
        let (outer, last) = self.dims.split_at(self.dims.len() - 1);
        let last = &last[0];
        let mut bases = vec![0usize];
        for d in outer {
            let mut next = Vec::with_capacity(bases.len() * (d.hi - d.lo));
            for b in &bases {
                for i in d.lo..d.hi {
                    next.push(b + i * d.stride);
                }
            }
            bases = next;
        }
        let mut runs: Vec<Range<usize>> = Vec::new();
        for b in bases {
            if last.stride == 1 {
                runs.push(b + last.lo..b + last.hi);
            } else {
                for i in last.lo..last.hi {
                    let w = b + i * last.stride;
                    runs.push(w..w + 1);
                }
            }
        }
        merge_ranges(runs)
    }
}

/// An affine bound `base + coef * i` over an outer index `i`, clamped at
/// zero. The building block of triangular sections: a compiler derives
/// these from loop bounds like `DO J = I+1, N`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AffineBound {
    /// Constant term (words).
    pub base: i64,
    /// Per-outer-index slope (words per index).
    pub coef: i64,
}

impl AffineBound {
    /// A constant bound (slope zero).
    pub const fn constant(base: i64) -> AffineBound {
        AffineBound { base, coef: 0 }
    }

    /// An affine bound `base + coef * i`.
    pub const fn affine(base: i64, coef: i64) -> AffineBound {
        AffineBound { base, coef }
    }

    /// Evaluate at outer index `i`, clamped at zero.
    pub fn eval(&self, i: usize) -> usize {
        (self.base + self.coef * i as i64).max(0) as usize
    }
}

/// A triangular section: for each outer index `i ∈ outer`, the contiguous
/// words `i·stride + lo(i) .. i·stride + hi(i)` with `lo`/`hi` affine in
/// `i`. This is the shape [`Section`] cannot express: the inner extent
/// varies with the outer index (MGS's `DO J = I+1, N` nests, triangular
/// solves), and the affine base also gives plain strided runs an origin
/// offset (a cyclic column set `j0, j0+np, …` of a padded matrix).
///
/// An empty inner range (`hi(i) <= lo(i)`) contributes nothing for that
/// `i`, so descriptors may over-approximate the outer range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriSection {
    /// Outer index range.
    pub outer: Range<usize>,
    /// Words between consecutive outer indices.
    pub stride: usize,
    /// Inner lower bound (inclusive), affine in the outer index.
    pub lo: AffineBound,
    /// Inner upper bound (exclusive), affine in the outer index.
    pub hi: AffineBound,
}

impl TriSection {
    /// The cyclic column set `{j ∈ cols : j ≡ me (mod np)}` of a matrix
    /// with `stride` words per column, each column contributing words
    /// `inner` — the per-node section of a cyclically scheduled loop.
    pub fn cyclic_cols(
        cols: Range<usize>,
        me: usize,
        np: usize,
        stride: usize,
        inner: Range<usize>,
    ) -> TriSection {
        // First owned column at or after cols.start.
        let j0 = cols.start + (me + np - cols.start % np) % np;
        let count = if j0 >= cols.end {
            0
        } else {
            (cols.end - j0).div_ceil(np)
        };
        TriSection {
            outer: 0..count,
            stride: np * stride,
            lo: AffineBound::constant((j0 * stride + inner.start) as i64),
            hi: AffineBound::constant((j0 * stride + inner.end) as i64),
        }
    }

    /// True when no outer index contributes any words.
    pub fn is_empty(&self) -> bool {
        self.words() == 0
    }

    /// Number of words described.
    pub fn words(&self) -> usize {
        self.outer
            .clone()
            .map(|i| self.hi.eval(i).saturating_sub(self.lo.eval(i)))
            .sum()
    }

    /// Enumerate as maximal contiguous word ranges (sorted, merged).
    pub fn word_ranges(&self) -> Vec<Range<usize>> {
        let runs = self
            .outer
            .clone()
            .map(|i| {
                let b = i * self.stride;
                b + self.lo.eval(i)..b + self.hi.eval(i).max(self.lo.eval(i))
            })
            .collect();
        merge_ranges(runs)
    }
}

/// Sort and merge overlapping or adjacent ranges.
pub fn merge_ranges(mut runs: Vec<Range<usize>>) -> Vec<Range<usize>> {
    runs.retain(|r| r.start < r.end);
    runs.sort_by_key(|r| r.start);
    let mut out: Vec<Range<usize>> = Vec::with_capacity(runs.len());
    for r in runs {
        match out.last_mut() {
            Some(last) if r.start <= last.end => last.end = last.end.max(r.end),
            _ => out.push(r),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_range_is_one_run() {
        assert_eq!(Section::range(5..12).word_ranges(), vec![5..12]);
        assert_eq!(Section::range(5..12).words(), 7);
        assert!(Section::range(5..5).is_empty());
        assert!(Section::range(5..5).word_ranges().is_empty());
    }

    #[test]
    fn full_columns_coalesce_into_one_run() {
        // Columns 2..5 of a 10-row array are contiguous in column-major
        // layout: the enumeration must merge them.
        assert_eq!(Section::cols(2..5, 10).word_ranges(), vec![20..50]);
    }

    #[test]
    fn strided_interior_stays_fragmented() {
        // Rows 1..4 of columns 0..3 (10 rows): three runs of three.
        let s = Section {
            dims: vec![
                Dim {
                    lo: 0,
                    hi: 3,
                    stride: 10,
                },
                Dim {
                    lo: 1,
                    hi: 4,
                    stride: 1,
                },
            ],
        };
        assert_eq!(s.word_ranges(), vec![1..4, 11..14, 21..24]);
        assert_eq!(s.words(), 9);
    }

    #[test]
    fn strided_helper_matches_manual_dims() {
        let s = Section::strided(2..4, 100, 10..20);
        assert_eq!(s.word_ranges(), vec![210..220, 310..320]);
    }

    #[test]
    fn non_unit_innermost_stride_enumerates_single_words() {
        let s = Section {
            dims: vec![Dim {
                lo: 0,
                hi: 3,
                stride: 4,
            }],
        };
        assert_eq!(s.word_ranges(), vec![0..1, 4..5, 8..9]);
    }

    #[test]
    fn merge_handles_overlap_and_adjacency() {
        assert_eq!(
            merge_ranges(vec![8..10, 0..4, 4..6, 5..9, 20..20]),
            vec![0..10]
        );
    }

    #[test]
    fn triangular_shrinking_upper_bound() {
        // For i in 0..3: words i*10 + (0 .. 6 - 2i): a lower-left triangle.
        let t = TriSection {
            outer: 0..3,
            stride: 10,
            lo: AffineBound::constant(0),
            hi: AffineBound::affine(6, -2),
        };
        assert_eq!(t.word_ranges(), vec![0..6, 10..14, 20..22]);
        assert_eq!(t.words(), 12);
        assert!(!t.is_empty());
    }

    #[test]
    fn triangular_growing_lower_bound() {
        // For i in 0..4: words i*4 + (i .. 4): the strict upper triangle of
        // a 4x4 column-major matrix, column i rows i..4.
        let t = TriSection {
            outer: 0..4,
            stride: 4,
            lo: AffineBound::affine(0, 1),
            hi: AffineBound::constant(4),
        };
        assert_eq!(t.word_ranges(), vec![0..4, 5..8, 10..12, 15..16]);
        assert_eq!(t.words(), 10);
    }

    #[test]
    fn triangular_empty_inner_ranges_drop_out() {
        let t = TriSection {
            outer: 0..5,
            stride: 8,
            lo: AffineBound::constant(0),
            hi: AffineBound::affine(2, -1), // empty from i = 2 on
        };
        assert_eq!(t.word_ranges(), vec![0..2, 8..9]);
        let empty = TriSection {
            outer: 3..3,
            stride: 8,
            lo: AffineBound::constant(0),
            hi: AffineBound::constant(4),
        };
        assert!(empty.is_empty());
        assert!(empty.word_ranges().is_empty());
    }

    #[test]
    fn cyclic_cols_partition_exactly() {
        // Columns 3..17 over 4 nodes, 10-word columns of which words 2..7
        // are touched: every column owned exactly once, by j % 4.
        let (stride, inner) = (10usize, 2..7);
        let mut seen = vec![0u32; 17 * stride];
        for me in 0..4 {
            let t = TriSection::cyclic_cols(3..17, me, 4, stride, inner.clone());
            for r in t.word_ranges() {
                for w in r {
                    seen[w] += 1;
                }
            }
        }
        for j in 3..17 {
            for i in 0..stride {
                let expect = u32::from(inner.contains(&i));
                assert_eq!(seen[j * stride + i], expect, "col {j} word {i}");
            }
        }
        // A node with no column in range contributes nothing.
        assert!(TriSection::cyclic_cols(5..6, 2, 4, 10, 0..10).is_empty());
    }
}
