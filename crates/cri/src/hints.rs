//! The hint engine: turning access descriptors into runtime actions.
//!
//! A compiler that knows the regular sections a parallel loop touches
//! can tell the DSM three things the paper's measurements show it pays
//! dearly for discovering at fault time:
//!
//! * **what a phase will read** — so the runtime issues one *aggregated
//!   validate* round trip per writer before the loop body runs, instead
//!   of taking a page fault (and a request/response pair) per page;
//! * **who consumes what a phase wrote** — so producers *push* the
//!   overlapping pages with the next synchronization rendezvous and the
//!   consumers never request them;
//! * **that a reduction is a reduction** — handled by
//!   [`treadmarks::Tmk::reduce`] (direct tree combining) rather than the
//!   lock-and-shared-page folding SPF emits by default.
//!
//! The engine is deliberately mechanical: descriptors are evaluated per
//! node from `(iteration range, proc id, nprocs)`, mirroring how the
//! compiler's runtime would evaluate its symbolic sections with the
//! loop bounds of the current dispatch.
//!
//! ## Dynamic descriptors (the inspector/executor split)
//!
//! When a loop's subscripts go through a run-time indirection map, no
//! static section exists — the descriptor *function* must walk the map
//! (an inspector loop) to discover the touched words, which it returns
//! as [`DynSection`](crate::DynSection)-backed accesses. Registering
//! such a function through [`HintEngine::register_dynamic`] makes the
//! engine memoize every evaluation in a **schedule cache** keyed by
//! `(loop, iteration range, node)`: the walk runs once per key per
//! epoch, and every later dispatch of the same loop — the executor
//! path — replays the cached sections straight into the validate /
//! push / home-placement machinery at zero inspection cost. Cache
//! effectiveness is observable as
//! [`DsmStats::inspections`](treadmarks::DsmStats) (cache misses, with
//! the walk's virtual time in `inspect_us`) versus
//! [`DsmStats::schedule_reuse`](treadmarks::DsmStats) (hits). An
//! epoch-invalidating event — the application rebuilt the map — clears
//! the cache through [`HintEngine::invalidate_schedules`] (the `spf`
//! runtime broadcasts the invalidation inside the next dispatch, so
//! every node re-inspects at the same loop boundary).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;
use std::rc::Rc;

use treadmarks::{ProtocolMode, SharedArray, Tmk};

use crate::dynsection::SectionSet;

/// Whether an access reads or writes its section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessMode {
    /// The loop reads the section.
    Read,
    /// The loop writes the section (a write view also fetches the
    /// current content, so write sections are validated too).
    Write,
}

/// Who reads a written section next — the producer side of the
/// barrier-time push.
#[derive(Clone, Debug)]
pub enum Consumer {
    /// The registered loop `id`, next dispatched over `iters`: every
    /// node's read sections of that loop are evaluated and the page
    /// overlap with the producer's writes is pushed.
    Loop {
        /// Consuming loop id (registration order).
        id: usize,
        /// The iteration space that loop will be dispatched over.
        iters: Range<usize>,
    },
    /// A specific node's sequential code (e.g. the master's wrap-around
    /// copies in Shallow): the whole written section is pushed there.
    Node(usize),
}

/// One access of a loop: a section of a shared array (regular,
/// triangular or dynamic), its mode, and (for writes) the known
/// consumers.
#[derive(Clone, Debug)]
pub struct Access {
    /// The shared array.
    pub arr: SharedArray,
    /// The section touched.
    pub section: SectionSet,
    /// Read or write.
    pub mode: AccessMode,
    /// Consumers of a written section (ignored for reads).
    pub consumers: Vec<Consumer>,
}

impl Access {
    /// A read access.
    pub fn read(arr: SharedArray, section: impl Into<SectionSet>) -> Access {
        Access {
            arr,
            section: section.into(),
            mode: AccessMode::Read,
            consumers: Vec::new(),
        }
    }

    /// A write access.
    pub fn write(arr: SharedArray, section: impl Into<SectionSet>) -> Access {
        Access {
            arr,
            section: section.into(),
            mode: AccessMode::Write,
            consumers: Vec::new(),
        }
    }

    /// Declare that registered loop `id`, dispatched over `iters`, reads
    /// this written section next.
    pub fn consumed_by_loop(mut self, id: usize, iters: Range<usize>) -> Access {
        self.consumers.push(Consumer::Loop { id, iters });
        self
    }

    /// Declare that node `q`'s sequential code reads this written
    /// section next.
    pub fn consumed_by_node(mut self, q: usize) -> Access {
        self.consumers.push(Consumer::Node(q));
        self
    }
}

/// A loop's access descriptor: evaluated with the dispatched iteration
/// range and a `(proc id, nprocs)` pair — for this node before/after the
/// body, and for every peer when computing push targets.
pub type AccessFn<'t> = Rc<dyn Fn(&Range<usize>, usize, usize) -> Vec<Access> + 't>;

/// Schedule-cache key: `(loop id, iters.start, iters.end, node)`.
type ScheduleKey = (usize, usize, usize, usize);

/// The per-node hint engine, layered on one [`Tmk`] instance.
pub struct HintEngine<'t, 'n> {
    tmk: &'t Tmk<'n>,
    fns: RefCell<Vec<Option<AccessFn<'t>>>>,
    /// Which registered descriptors are dynamic (inspector-backed).
    dynamic: RefCell<Vec<bool>>,
    /// Schedule cache for dynamic descriptors:
    /// `(loop id, iters.start, iters.end, node) -> evaluated accesses`.
    schedules: RefCell<HashMap<ScheduleKey, Rc<Vec<Access>>>>,
}

impl<'t, 'n> HintEngine<'t, 'n> {
    /// An engine with no descriptors.
    pub fn new(tmk: &'t Tmk<'n>) -> HintEngine<'t, 'n> {
        HintEngine {
            tmk,
            fns: RefCell::new(Vec::new()),
            dynamic: RefCell::new(Vec::new()),
            schedules: RefCell::new(HashMap::new()),
        }
    }

    /// The DSM instance.
    pub fn tmk(&self) -> &'t Tmk<'n> {
        self.tmk
    }

    /// Attach `access` as loop `id`'s descriptor (same registration order
    /// on every node, like the loop bodies themselves).
    pub fn set(&self, id: usize, access: impl Fn(&Range<usize>, usize, usize) -> Vec<Access> + 't) {
        let mut fns = self.fns.borrow_mut();
        if fns.len() <= id {
            fns.resize_with(id + 1, || None);
        }
        fns[id] = Some(Rc::new(access));
        let mut dynamic = self.dynamic.borrow_mut();
        if dynamic.len() <= id {
            dynamic.resize(id + 1, false);
        }
        dynamic[id] = false;
        // Re-registration replaces the descriptor: any schedules cached
        // from the previous one are stale.
        self.schedules.borrow_mut().retain(|k, _| k.0 != id);
    }

    /// Attach a **dynamic** (inspector) descriptor to loop `id`: the
    /// function walks a run-time indirection map, so its evaluations are
    /// memoized in the schedule cache and counted (miss =
    /// `DsmStats::inspections`, hit = `DsmStats::schedule_reuse`). The
    /// walk's virtual-time cost — whatever the function charged through
    /// `Node::advance` — is recorded in `DsmStats::inspect_us`.
    pub fn register_dynamic(
        &self,
        id: usize,
        inspect: impl Fn(&Range<usize>, usize, usize) -> Vec<Access> + 't,
    ) {
        self.set(id, inspect);
        self.dynamic.borrow_mut()[id] = true;
    }

    /// True when loop `id` has a descriptor.
    pub fn has(&self, id: usize) -> bool {
        self.fns.borrow().get(id).is_some_and(|f| f.is_some())
    }

    /// Drop every cached schedule: an epoch-invalidating event (the
    /// application rebuilt an indirection map). The next evaluation of
    /// each dynamic descriptor re-inspects. Every node must invalidate
    /// at the same loop boundary — the `spf` runtime ships the
    /// invalidation inside the dispatch so workers and master agree.
    pub fn invalidate_schedules(&self) {
        self.schedules.borrow_mut().clear();
    }

    fn get(&self, id: usize) -> Option<AccessFn<'t>> {
        self.fns.borrow().get(id).and_then(|f| f.clone())
    }

    /// Evaluate loop `id`'s descriptor for node `q` over `iters`. Static
    /// descriptors evaluate directly (they are cheap symbolic sections);
    /// dynamic descriptors go through the schedule cache.
    fn eval(
        &self,
        id: usize,
        iters: &Range<usize>,
        q: usize,
        np: usize,
    ) -> Option<Rc<Vec<Access>>> {
        let f = self.get(id)?;
        if !self.dynamic.borrow().get(id).copied().unwrap_or(false) {
            return Some(Rc::new(f(iters, q, np)));
        }
        let key = (id, iters.start, iters.end, q);
        if let Some(hit) = self.schedules.borrow().get(&key) {
            self.tmk.note_schedule_reuse();
            return Some(Rc::clone(hit));
        }
        // Inspection: run the walk and charge it as inspector cost (the
        // walk advances virtual time itself; the delta is the cost).
        let _s = self
            .tmk
            .node()
            .trace_span(sp2sim::SpanKind::Inspect, id as u32);
        let t0 = self.tmk.node().now().us();
        let accesses = Rc::new(f(iters, q, np));
        let us = self.tmk.node().now().us() - t0;
        self.tmk.note_inspection(us);
        self.schedules
            .borrow_mut()
            .insert(key, Rc::clone(&accesses));
        Some(accesses)
    }

    /// Pre-loop hint: an aggregated validate of every section the body
    /// will touch. Returns the number of pages that needed fetching.
    ///
    /// Home placement is **not** done here: the nodes reach
    /// `before_loop` with different interval views (the master may
    /// already have published its post-body interval into the dispatch
    /// departure), so a per-node placement decision could diverge. The
    /// fork-join runtime instead decides once on the master at fork
    /// time — see [`HintEngine::planned_homes`] and the `spf` crate —
    /// and ships the accepted overrides with the dispatch.
    pub fn before_loop(&self, id: usize, iters: &Range<usize>) -> u64 {
        let me = self.tmk.proc_id();
        let np = self.tmk.nprocs();
        let Some(accesses) = self.eval(id, iters, me, np) else {
            return 0;
        };
        let mut sections: Vec<(SharedArray, Range<usize>)> = Vec::new();
        for a in accesses.iter() {
            for r in a.section.word_ranges() {
                sections.push((a.arr, r));
            }
        }
        if sections.is_empty() {
            return 0;
        }
        self.tmk.validate(&sections)
    }

    /// HLRC home-placement candidates from loop `id`'s descriptor: every
    /// page exactly one node's write section covers, paired with that
    /// node — the declared producer. Pure (nothing installed): the
    /// fork-join runtime filters the candidates through the runtime's
    /// no-notice guard on the master at fork time (when every worker is
    /// parked in its dispatch wait and no interval is in flight, so the
    /// decision state is cluster-complete) and ships the accepted list
    /// with the dispatch for the workers to install verbatim.
    pub fn planned_homes(&self, id: usize, iters: &Range<usize>) -> Vec<(usize, usize)> {
        if self.tmk.config().protocol != ProtocolMode::Hlrc {
            return Vec::new();
        }
        if !self.has(id) {
            return Vec::new();
        }
        let np = self.tmk.nprocs();
        let mut writers: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for q in 0..np {
            let Some(accesses) = self.eval(id, iters, q, np) else {
                continue;
            };
            for a in accesses.iter() {
                if a.mode != AccessMode::Write {
                    continue;
                }
                for p in self.pages_of(a.arr, &a.section) {
                    writers.entry(p).or_default().insert(q);
                }
            }
        }
        writers
            .into_iter()
            .filter_map(|(p, ws)| {
                (ws.len() == 1).then(|| (p, *ws.iter().next().expect("single writer")))
            })
            .collect()
    }

    /// Install the producer-home candidates of loop `id` directly, each
    /// through the runtime's no-notice guard. Only safe at a globally
    /// quiescent point (same call on every node with no unintegrated
    /// intervals anywhere — e.g. right after startup, or between two
    /// barriers with no writes in between); inside the fork-join flow
    /// use the master-decides path instead (see
    /// [`HintEngine::planned_homes`]). Returns the overrides accepted.
    pub fn declare_homes(&self, id: usize, iters: &Range<usize>) -> u64 {
        let mut accepted = 0;
        for (p, producer) in self.planned_homes(id, iters) {
            if self.tmk.set_page_home(p, producer) {
                accepted += 1;
            }
        }
        accepted
    }

    /// Post-loop hint: register pushes for every written section with
    /// known consumers. A consumer's pages are computed from *its* read
    /// descriptor; only the page-level overlap with the producer's writes
    /// travels (page granularity also captures the false-sharing fetches
    /// a page-based DSM would otherwise pay). Under HLRC a consumer that
    /// is the page's home is skipped: the producer's eager home flush
    /// already carries the same diff there, so a push would only arrive
    /// as a duplicate for the stale-flush guard to drop — this is where
    /// a hinted body chooses push vs home-flush per `(consumer, page)`.
    /// Returns the number of `(target, page)` registrations.
    pub fn after_loop(&self, id: usize, iters: &Range<usize>) -> u64 {
        let me = self.tmk.proc_id();
        let np = self.tmk.nprocs();
        let Some(accesses) = self.eval(id, iters, me, np) else {
            return 0;
        };
        self.register_pushes(&accesses)
    }

    /// Declare sections *sequential* code on this node just wrote,
    /// together with their consumers — the compiler's descriptor for
    /// straight-line code between two dispatches (MGS's pivot
    /// normalization on the master is the canonical case). Pushes ride
    /// this node's next rendezvous exactly like a loop's `after_loop`
    /// registrations; [`Consumer::Loop`] overlaps are evaluated through
    /// the consumer's registered descriptor. Returns the number of
    /// `(target, page)` registrations.
    pub fn declare_produce(&self, accesses: &[Access]) -> u64 {
        self.register_pushes(accesses)
    }

    fn register_pushes(&self, accesses: &[Access]) -> u64 {
        let me = self.tmk.proc_id();
        let np = self.tmk.nprocs();
        let hlrc = self.tmk.config().protocol == ProtocolMode::Hlrc;
        let flushed_to = |q: usize, p: usize| hlrc && self.tmk.page_home(p) == q;
        let mut registered = 0;
        for a in accesses {
            if a.mode != AccessMode::Write || a.consumers.is_empty() {
                continue;
            }
            let mine = self.pages_of(a.arr, &a.section);
            if mine.is_empty() {
                continue;
            }
            for c in &a.consumers {
                match c {
                    Consumer::Loop { id: cid, iters: ci } => {
                        for q in (0..np).filter(|&q| q != me) {
                            let Some(theirs) = self.eval(*cid, ci, q, np) else {
                                continue;
                            };
                            // Union of q's accesses on this array — reads
                            // and writes alike, since a write view fetches
                            // the current content too.
                            let mut pages = BTreeSet::new();
                            for ca in theirs.iter() {
                                if ca.arr == a.arr {
                                    pages.extend(self.pages_of(ca.arr, &ca.section));
                                }
                            }
                            for &p in mine.intersection(&pages) {
                                if flushed_to(q, p) {
                                    continue;
                                }
                                self.tmk.push_page_at_next_sync(q, p);
                                registered += 1;
                            }
                        }
                    }
                    Consumer::Node(q) => {
                        if *q != me {
                            for &p in &mine {
                                if flushed_to(*q, p) {
                                    continue;
                                }
                                self.tmk.push_page_at_next_sync(*q, p);
                                registered += 1;
                            }
                        }
                    }
                }
            }
        }
        registered
    }

    fn pages_of(&self, arr: SharedArray, section: &SectionSet) -> BTreeSet<usize> {
        let mut pages = BTreeSet::new();
        for r in section.word_ranges() {
            pages.extend(self.tmk.page_span(arr, &r));
        }
        pages
    }
}
